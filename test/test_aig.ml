(* The AIG substrate and the priority-cut mapper: strashing canonicity,
   conversion/simulation equivalence, cut enumeration bounds,
   depth-optimality against FlowMap's labels, mapped-network equivalence and
   determinism, and the dual-mapper differential gates (cycle-accurate
   network lockstep on the VHDL designs, oracle runs over the corpus). *)

module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Truth_table = Nanomap_logic.Truth_table
module Aig = Nanomap_aig.Aig
module Cut = Nanomap_aig.Cut
module Decompose = Nanomap_techmap.Decompose
module Flowmap = Nanomap_techmap.Flowmap
module Aig_map = Nanomap_techmap.Aig_map
module Lut_network = Nanomap_techmap.Lut_network
module Mapper = Nanomap_core.Mapper
module Rng = Nanomap_util.Rng
module Vhdl = Nanomap_vhdl.Vhdl
module Fuzz = Nanomap_verify.Fuzz
module Oracle = Nanomap_verify.Oracle

let check = Alcotest.check

(* Same helper as test_techmap: wrap a bare gate netlist as a tagged plane
   (inputs become fake PI origins keyed by creation index). *)
let tag_netlist nl =
  let input_origins =
    List.mapi (fun i (_, gid) -> (gid, Lut_network.Pi_bit (i, 0))) (Gate_netlist.inputs nl)
  in
  let output_targets =
    List.map (fun (name, gid) -> (Lut_network.Po_target name, gid)) (Gate_netlist.outputs nl)
  in
  { Decompose.gates = nl;
    tags = Array.make (Gate_netlist.size nl) (-1);
    input_origins;
    output_targets }

let equivalent_exhaustive tg lut =
  let nl = tg.Decompose.gates in
  let ins = Gate_netlist.inputs nl in
  let n =
    List.fold_left
      (fun acc (_, origin) ->
        match origin with Lut_network.Pi_bit (i, _) -> max acc (i + 1) | _ -> acc)
      0 tg.Decompose.input_origins
  in
  assert (n <= 16);
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let input_values = Array.init n (fun i -> v land (1 lsl i) <> 0) in
    let sim_inputs =
      List.map
        (fun (_, gid) ->
          match List.assoc gid tg.Decompose.input_origins with
          | Lut_network.Pi_bit (i, _) -> input_values.(i)
          | Lut_network.Const_bit b -> b
          | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false)
        ins
    in
    let gate_values = Gate_netlist.simulate nl (Array.of_list sim_inputs) in
    let origin_value = function
      | Lut_network.Pi_bit (i, _) -> input_values.(i)
      | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false
      | Lut_network.Const_bit b -> b
    in
    let lut_values = Lut_network.eval lut origin_value in
    List.iter
      (fun (target, gid) ->
        let expected = gate_values.(gid) in
        let node = List.assoc target (Lut_network.outputs lut) in
        if lut_values.(node) <> expected then ok := false)
      tg.Decompose.output_targets
  done;
  !ok

(* --- strashing and constant propagation --- *)

let test_strash_commute () =
  let t = Aig.create () in
  let a = Aig.add_input t and b = Aig.add_input t in
  let ab = Aig.mk_and t a b in
  check Alcotest.int "commuted operands strash to one node" ab (Aig.mk_and t b a);
  let n = Aig.num_nodes t in
  ignore (Aig.mk_and t a b);
  check Alcotest.int "no new node on replay" n (Aig.num_nodes t)

let test_const_prop () =
  let t = Aig.create () in
  let a = Aig.add_input t in
  check Alcotest.int "a & false" Aig.lit_false (Aig.mk_and t a Aig.lit_false);
  check Alcotest.int "a & true" a (Aig.mk_and t a Aig.lit_true);
  check Alcotest.int "a & a" a (Aig.mk_and t a a);
  check Alcotest.int "a & not a" Aig.lit_false (Aig.mk_and t a (Aig.lit_not a));
  check Alcotest.int "no AND created" 0 (Aig.num_ands t)

let test_strash_xor_shared () =
  let t = Aig.create () in
  let a = Aig.add_input t and b = Aig.add_input t in
  let x1 = Aig.mk_xor t a b in
  let n = Aig.num_nodes t in
  let x2 = Aig.mk_xor t a b in
  check Alcotest.int "same literal" x1 x2;
  check Alcotest.int "no structural growth" n (Aig.num_nodes t)

let test_levels () =
  let t = Aig.create () in
  let a = Aig.add_input t and b = Aig.add_input t and c = Aig.add_input t in
  let ab = Aig.mk_and t a b in
  let abc = Aig.mk_and t ab c in
  check Alcotest.int "input level" 0 (Aig.level t (Aig.node_of_lit a));
  check Alcotest.int "and level" 1 (Aig.level t (Aig.node_of_lit ab));
  check Alcotest.int "chained level" 2 (Aig.level t (Aig.node_of_lit abc));
  check Alcotest.int "depth" 2 (Aig.depth t)

(* --- conversion and simulation equivalence --- *)

let random_netlist seed ~num_inputs ~layers ~layer_width ~num_outputs =
  Gen.random_layered (Rng.create seed) ~num_inputs ~layers ~layer_width
    ~num_outputs

let gate_values_of nl input_values =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (_, gid) -> Hashtbl.replace tbl gid input_values.(i))
    (Gate_netlist.inputs nl);
  tbl

let test_gate_conversion_equiv () =
  List.iter
    (fun seed ->
      let nl = random_netlist seed ~num_inputs:6 ~layers:4 ~layer_width:8 ~num_outputs:5 in
      let conv = Aig.of_gate_netlist nl in
      for v = 0 to 63 do
        let input_values = Array.init 6 (fun i -> v land (1 lsl i) <> 0) in
        let sim = Gate_netlist.simulate nl input_values in
        let by_gid = gate_values_of nl input_values in
        let vals =
          Aig.eval conv.Aig.aig (fun ordinal ->
              Hashtbl.find by_gid conv.Aig.gate_of_input.(ordinal))
        in
        List.iter
          (fun (name, gid) ->
            check Alcotest.bool
              (Printf.sprintf "seed %d v %d output %s" seed v name)
              sim.(gid)
              (Aig.eval_lit vals conv.Aig.lit_of_gate.(gid)))
          (Gate_netlist.outputs nl)
      done)
    [ 1; 2; 3 ]

let test_sim64_matches_eval () =
  let nl = random_netlist 9 ~num_inputs:7 ~layers:5 ~layer_width:9 ~num_outputs:6 in
  let conv = Aig.of_gate_netlist nl in
  let rng = Rng.create 99 in
  let words = Array.init (Aig.num_inputs conv.Aig.aig) (fun _ -> Rng.int64 rng) in
  let vals64 = Aig.sim64 conv.Aig.aig (fun i -> words.(i)) in
  for lane = 0 to 63 do
    let bit w = Int64.logand (Int64.shift_right_logical w lane) 1L = 1L in
    let vals = Aig.eval conv.Aig.aig (fun i -> bit words.(i)) in
    List.iter
      (fun (name, gid) ->
        let l = conv.Aig.lit_of_gate.(gid) in
        check Alcotest.bool
          (Printf.sprintf "lane %d output %s" lane name)
          (Aig.eval_lit vals l)
          (bit (Aig.sim64_lit vals64 l)))
      (Gate_netlist.outputs nl)
  done

let test_lit_of_table_roundtrip () =
  let rng = Rng.create 17 in
  for _ = 1 to 40 do
    let arity = Rng.int rng 5 in
    let table = Truth_table.of_bits ~arity (Rng.int64 rng) in
    let t = Aig.create () in
    let fanins = Array.init arity (fun _ -> Aig.add_input t) in
    let root = Aig.lit_of_table t table fanins in
    for v = 0 to (1 lsl arity) - 1 do
      let bits = Array.init arity (fun i -> v land (1 lsl i) <> 0) in
      let vals = Aig.eval t (fun i -> bits.(i)) in
      check Alcotest.bool
        (Printf.sprintf "%s at %d" (Truth_table.to_string table) v)
        (Truth_table.eval table bits)
        (Aig.eval_lit vals root)
    done
  done

(* --- cut enumeration --- *)

let roots_of conv nl =
  List.map (fun (_, gid) -> conv.Aig.lit_of_gate.(gid)) (Gate_netlist.outputs nl)

let test_cut_bounds () =
  let nl = random_netlist 4 ~num_inputs:8 ~layers:6 ~layer_width:12 ~num_outputs:8 in
  let conv = Aig.of_gate_netlist nl in
  let aig = conv.Aig.aig in
  List.iter
    (fun effort ->
      let budget = match effort with 1 -> 6 | 2 -> 8 | _ -> 12 in
      let m = Cut.compute ~k:4 ~effort aig ~roots:(roots_of conv nl) in
      for n = 0 to Aig.num_nodes aig - 1 do
        if Aig.is_and aig n then begin
          let cuts = m.Cut.cuts.(n) in
          let real = Array.length cuts - 1 in
          if real < 1 then Alcotest.fail "AND node without a non-trivial cut";
          if real > budget then
            Alcotest.failf "node %d keeps %d cuts > budget %d" n real budget;
          (* last entry is the trivial self-cut *)
          check Alcotest.(array int) "trivial last" [| n |] cuts.(real).Cut.leaves;
          for i = 0 to real - 1 do
            let leaves = cuts.(i).Cut.leaves in
            if Array.length leaves > 4 then Alcotest.fail "cut wider than k";
            Array.iteri
              (fun j l ->
                if j > 0 && leaves.(j - 1) >= l then
                  Alcotest.fail "cut leaves not strictly ascending")
              leaves
          done;
          if m.Cut.label.(n) < 1 then Alcotest.fail "AND label below 1";
          if m.Cut.choice.(n) >= 0 && m.Cut.choice.(n) >= real then
            Alcotest.fail "chosen cut out of range (or trivial)"
        end
      done)
    [ 1; 2; 3 ]

(* Depth optimality: on a netlist of And2/Or2 gates with all-distinct fanin
   pairs, the AIG is structurally 1:1 with the gate DAG (an Or is one AND
   node with complemented edges), so priority-cut labels must equal
   FlowMap's depth-optimal labels gate for gate. *)
let random_andor_netlist seed ~num_inputs ~gates =
  let rng = Rng.create seed in
  let nl = Gate_netlist.create () in
  let nodes = ref [] in
  for i = 0 to num_inputs - 1 do
    nodes := Gate_netlist.add_input nl (Printf.sprintf "i%d" i) :: !nodes
  done;
  let used = Hashtbl.create 64 in
  let pool = ref (Array.of_list !nodes) in
  let made = ref 0 in
  let attempts = ref 0 in
  while !made < gates && !attempts < gates * 20 do
    incr attempts;
    let arr = !pool in
    let a = arr.(Rng.int rng (Array.length arr)) in
    let b = arr.(Rng.int rng (Array.length arr)) in
    let kind = if Rng.bool rng then Gate.And2 else Gate.Or2 in
    let key = (kind, min a b, max a b) in
    if a <> b && not (Hashtbl.mem used key) then begin
      Hashtbl.replace used key ();
      let g = Gate_netlist.add_gate nl kind [| min a b; max a b |] in
      pool := Array.append arr [| g |];
      incr made
    end
  done;
  (* outputs: the last few gates, to anchor deep cones *)
  let size = Gate_netlist.size nl in
  for i = 0 to min 3 (size - num_inputs) - 1 do
    Gate_netlist.mark_output nl (Printf.sprintf "o%d" i) (size - 1 - i)
  done;
  nl

let test_depth_optimal_vs_flowmap () =
  List.iter
    (fun seed ->
      let nl = random_andor_netlist seed ~num_inputs:6 ~gates:40 in
      let tg = tag_netlist nl in
      let fm_labels = Flowmap.labels ~k:4 tg in
      let conv = Aig.of_gate_netlist nl in
      let m =
        Cut.compute ~k:4 ~effort:3 conv.Aig.aig ~roots:(roots_of conv nl)
      in
      Gate_netlist.iter
        (fun gid node ->
          match node.Gate_netlist.kind with
          | Gate.And2 | Gate.Or2 ->
            let n = Aig.node_of_lit conv.Aig.lit_of_gate.(gid) in
            check Alcotest.int
              (Printf.sprintf "seed %d gate %d label" seed gid)
              fm_labels.(gid) m.Cut.label.(n)
          | _ -> ())
        nl)
    [ 1; 5; 23 ]

(* --- the full Aig_map pass --- *)

let test_map_equiv_random () =
  List.iter
    (fun seed ->
      let nl = random_netlist seed ~num_inputs:8 ~layers:5 ~layer_width:10 ~num_outputs:6 in
      let tg = tag_netlist nl in
      List.iter
        (fun (effort, balance) ->
          let lut = Aig_map.map ~k:4 ~effort ~balance tg in
          Lut_network.validate lut;
          check Alcotest.bool
            (Printf.sprintf "seed %d effort %d balance %b" seed effort balance)
            true
            (equivalent_exhaustive tg lut))
        [ (1, false); (2, false); (3, false); (2, true) ])
    [ 11; 12; 13 ]

(* Outputs that are constants, bare inputs, inverted inputs and complemented
   AND roots all take special paths in the emitter. *)
let test_map_edge_outputs () =
  let nl = Gate_netlist.create () in
  let a = Gate_netlist.add_input nl "a" in
  let b = Gate_netlist.add_input nl "b" in
  let nand_g = Gate_netlist.add_gate nl Gate.Nand2 [| a; b |] in
  let and_g = Gate_netlist.add_gate nl Gate.And2 [| a; b |] in
  let not_g = Gate_netlist.add_gate nl Gate.Not [| a |] in
  let buf_g = Gate_netlist.add_gate nl Gate.Buf [| b |] in
  let c1 = Gate_netlist.add_const nl true in
  let c0 = Gate_netlist.add_const nl false in
  List.iteri
    (fun i g -> Gate_netlist.mark_output nl (Printf.sprintf "o%d" i) g)
    [ nand_g; and_g; not_g; buf_g; c1; c0 ];
  let tg = tag_netlist nl in
  let lut = Aig_map.map ~k:4 tg in
  Lut_network.validate lut;
  check Alcotest.bool "edge outputs equivalent" true (equivalent_exhaustive tg lut);
  (* nand and and share the same cut: one LUT plus its negated sibling *)
  check Alcotest.int "two LUTs (root + negated sibling) plus one inverter" 3
    (Lut_network.num_luts lut)

let test_map_deterministic () =
  let build () = random_netlist 21 ~num_inputs:8 ~layers:6 ~layer_width:12 ~num_outputs:8 in
  let fp mapper =
    let tg = tag_netlist (build ()) in
    let lut =
      match mapper with
      | `Aig -> Aig_map.map ~k:4 ~effort:2 tg
      | `Tt -> Flowmap.map ~k:4 tg
    in
    Lut_network.fingerprint lut
  in
  check Alcotest.string "aig fingerprint stable" (fp `Aig) (fp `Aig);
  check Alcotest.string "flowmap fingerprint stable" (fp `Tt) (fp `Tt)

(* --- dual-mapper cycle lockstep over the VHDL designs --- *)

let design_path name =
  let rec hunt dir depth =
    let candidate = Filename.concat (Filename.concat dir "designs") name in
    if Sys.file_exists candidate then candidate
    else if depth > 8 then failwith ("designs/" ^ name ^ " not found")
    else hunt (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  hunt (Sys.getcwd ()) 0

(* Evaluate one macro cycle of a prepared design's plane networks under an
   explicit state/stimulus, returning (next register state, PO values). *)
let eval_cycle (p : Mapper.prepared) state pi_value =
  let wires = Hashtbl.create 32 in
  let next = Hashtbl.create 32 in
  let pos = Hashtbl.create 32 in
  Array.iter
    (fun network ->
      let vals =
        Lut_network.eval network (function
          | Lut_network.Register_bit (r, b) ->
            Option.value (Hashtbl.find_opt state (r, b)) ~default:false
          | Lut_network.Pi_bit (s, b) -> pi_value (s, b)
          | Lut_network.Wire_bit (w, b) ->
            Option.value (Hashtbl.find_opt wires (w, b)) ~default:false
          | Lut_network.Const_bit b -> b)
      in
      List.iter
        (fun (target, node) ->
          match target with
          | Lut_network.Reg_target (r, b) -> Hashtbl.replace next (r, b) vals.(node)
          | Lut_network.Po_target s -> Hashtbl.replace pos s vals.(node)
          | Lut_network.Wire_target (w, b) -> Hashtbl.replace wires (w, b) vals.(node))
        (Lut_network.outputs network))
    p.Mapper.networks;
  (next, pos)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let lockstep_networks ?(cycles = 40) name =
  let design = Vhdl.design_of_file (design_path name) in
  let p_tt = Mapper.prepare design in
  let p_aig = Mapper.prepare ~mapper:Mapper.Aig design in
  (* collect every PI bit either mapper consumes, so both sides see one
     shared stimulus *)
  let pi_bits = Hashtbl.create 32 in
  List.iter
    (fun (p : Mapper.prepared) ->
      Array.iter
        (fun network ->
          Lut_network.iter
            (fun _ -> function
              | Lut_network.Input (Lut_network.Pi_bit (s, b)) ->
                Hashtbl.replace pi_bits (s, b) ()
              | _ -> ())
            network)
        p.Mapper.networks)
    [ p_tt; p_aig ];
  let pi_bits = List.map fst (sorted_bindings pi_bits) in
  let rng = Rng.create 7 in
  let state_tt = ref (Hashtbl.create 32) and state_aig = ref (Hashtbl.create 32) in
  for cycle = 1 to cycles do
    let stimulus = Hashtbl.create 32 in
    List.iter (fun key -> Hashtbl.replace stimulus key (Rng.bool rng)) pi_bits;
    let pi_value key = Option.value (Hashtbl.find_opt stimulus key) ~default:false in
    let next_tt, pos_tt = eval_cycle p_tt !state_tt pi_value in
    let next_aig, pos_aig = eval_cycle p_aig !state_aig pi_value in
    if sorted_bindings pos_tt <> sorted_bindings pos_aig then
      Alcotest.failf "%s cycle %d: PO values diverge between mappers" name cycle;
    if sorted_bindings next_tt <> sorted_bindings next_aig then
      Alcotest.failf "%s cycle %d: register state diverges between mappers" name
        cycle;
    state_tt := next_tt;
    state_aig := next_aig
  done

let lockstep_cases =
  List.map
    (fun name ->
      Alcotest.test_case name `Quick (fun () -> lockstep_networks name))
    [ "mac.vhd"; "fir4.vhd"; "biquad.vhd"; "pipeline3.vhd"; "counter.vhd" ]

(* --- both mappers, folding 1 / 2 / none, over the corpus designs --- *)

let expect_pass label outcome =
  match outcome with
  | Oracle.Pass _ -> ()
  | other -> Alcotest.failf "%s: %s" label (Oracle.describe other)

let corpus_dir () =
  let rec hunt dir depth =
    let candidate = Filename.concat (Filename.concat dir "test") "corpus" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else if depth > 8 then failwith "test/corpus not found"
    else hunt (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  hunt (Sys.getcwd ()) 0

let corpus_fuzz_cases =
  let specs = Fuzz.load_corpus (corpus_dir ()) in
  if specs = [] then failwith "corpus is empty";
  List.concat_map
    (fun (file, spec) ->
      List.concat_map
        (fun fold ->
          List.map
            (fun mapper ->
              let label =
                Printf.sprintf "%s fold %s mapper %s" file
                  (Fuzz.string_of_fold fold)
                  (Mapper.string_of_mapper mapper)
              in
              Alcotest.test_case label `Quick (fun () ->
                  expect_pass label
                    (Fuzz.run_spec ~cycles:25 ~seed:3 ~mapper fold spec)))
            [ Mapper.Truth_table; Mapper.Aig ])
        [ Fuzz.F_level 1; Fuzz.F_level 2; Fuzz.F_none ])
    specs

let test_random_campaign_aig () =
  let summary =
    Fuzz.run
      { Fuzz.default_config with
        Fuzz.count = 6;
        cycles = 20;
        seed = 31;
        mapper = Mapper.Aig }
  in
  check Alcotest.int "all cases pass" summary.Fuzz.cases summary.Fuzz.passed;
  check Alcotest.int "no flow errors" 0 (List.length summary.Fuzz.flow_errors)

let () =
  Alcotest.run "aig"
    [ ( "substrate",
        [ Alcotest.test_case "strash commute" `Quick test_strash_commute;
          Alcotest.test_case "const prop" `Quick test_const_prop;
          Alcotest.test_case "xor shared" `Quick test_strash_xor_shared;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "gate conversion" `Quick test_gate_conversion_equiv;
          Alcotest.test_case "sim64 vs eval" `Quick test_sim64_matches_eval;
          Alcotest.test_case "lit_of_table" `Quick test_lit_of_table_roundtrip ] );
      ( "cuts",
        [ Alcotest.test_case "enumeration bounds" `Quick test_cut_bounds;
          Alcotest.test_case "depth-optimal labels" `Quick
            test_depth_optimal_vs_flowmap ] );
      ( "aig-map",
        [ Alcotest.test_case "random equivalence" `Quick test_map_equiv_random;
          Alcotest.test_case "edge outputs" `Quick test_map_edge_outputs;
          Alcotest.test_case "deterministic" `Quick test_map_deterministic ] );
      ("dual-mapper-lockstep", lockstep_cases);
      ( "dual-mapper-fuzz",
        corpus_fuzz_cases
        @ [ Alcotest.test_case "random campaign (aig)" `Slow
              test_random_campaign_aig ] ) ]
