(* Architecture-generalization battery (PR 10): QCheck generators over the
   parametric NATURE knob space, typed-diagnostic coverage of
   Arch.validate_result, the four-level differential oracle at non-default
   architecture points x folding regimes x both technology mappers, and
   K=3/K=6 regressions for the places a hard-coded K=4 used to hide
   (cut enumeration, truth-table widths, bitstream LUT field sizing). *)

module Arch = Nanomap_arch.Arch
module Aig = Nanomap_aig.Aig
module Cut = Nanomap_aig.Cut
module Truth_table = Nanomap_logic.Truth_table
module Gate_netlist = Nanomap_logic.Gate_netlist
module Mapper = Nanomap_core.Mapper
module Bitstream = Nanomap_bitstream.Bitstream
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Oracle = Nanomap_verify.Oracle
module Gen_rtl = Nanomap_verify.Gen_rtl
module Explore = Nanomap_explore.Explore
module Rng = Nanomap_util.Rng
module Diag = Nanomap_util.Diag

let check = Alcotest.check

(* ------------------------------------------- arch-point generator *)

(* The knob space the explorer sweeps, plus the channel-width knobs it
   holds fixed: every draw must satisfy Arch.validate_result. *)
let gen_arch_params =
  QCheck.Gen.(
    let* k = int_range 3 6 in
    let* les_per_mb = int_range 2 8 in
    let* mbs_per_smb = int_range 2 8 in
    let* fs = map (fun i -> 3 * i) (int_range 1 3) in
    let* fc = map (fun t -> float_of_int t /. 10.0) (int_range 1 10) in
    let* chan_len1 = int_range 2 32 in
    let* chan_direct = int_range 1 8 in
    let* chan_len4 = int_range 1 8 in
    let* chan_global = int_range 1 8 in
    return (k, les_per_mb, mbs_per_smb, fs, fc, chan_len1, chan_direct,
            chan_len4, chan_global))

let arch_of_params (k, les_per_mb, mbs_per_smb, fs, fc, chan_len1,
                    chan_direct, chan_len4, chan_global) =
  { (Explore.arch_point ~k ~les_per_mb ~mbs_per_smb ~fs ~fc ()) with
    Arch.chan_len1; chan_direct; chan_len4; chan_global }

let arb_arch =
  QCheck.make gen_arch_params
    ~print:(fun (k, le, mb, fs, fc, c1, cd, c4, cg) ->
      Printf.sprintf
        "k=%d les/mb=%d mbs/smb=%d fs=%d fc=%.1f chans=%d/%d/%d/%d" k le mb
        fs fc cd c1 c4 cg)

(* Every generated point validates. *)
let prop_generator_valid =
  QCheck.Test.make ~count:300 ~name:"generator stays inside validate"
    arb_arch (fun params ->
      match Arch.validate_result (arch_of_params params) with
      | Ok () -> true
      | Error d -> QCheck.Test.fail_reportf "rejected: %s" d.Diag.code)

(* Each malformed field is rejected with its own typed code, and the
   diagnostic names the field in its context. *)
let mutations =
  [ ("bad-lut-inputs", "lut_inputs", fun a -> { a with Arch.lut_inputs = 0 });
    ("bad-lut-inputs", "lut_inputs",
     fun a -> { a with Arch.lut_inputs = Arch.max_lut_inputs + 1 });
    ("bad-luts-per-le", "luts_per_le", fun a -> { a with Arch.luts_per_le = 0 });
    ("bad-ffs-per-le", "ffs_per_le", fun a -> { a with Arch.ffs_per_le = -1 });
    ("bad-les-per-mb", "les_per_mb", fun a -> { a with Arch.les_per_mb = 0 });
    ("bad-mbs-per-smb", "mbs_per_smb", fun a -> { a with Arch.mbs_per_smb = 0 });
    ("bad-smb-input-pins", "smb_input_pins",
     fun a -> { a with Arch.smb_input_pins = a.Arch.lut_inputs - 1 });
    ("bad-mb-input-ports", "mb_input_ports",
     fun a -> { a with Arch.mb_input_ports = a.Arch.lut_inputs - 1 });
    ("bad-num-reconf", "num_reconf", fun a -> { a with Arch.num_reconf = Some 0 });
    ("bad-chan-direct", "chan_direct", fun a -> { a with Arch.chan_direct = 0 });
    ("bad-chan-len1", "chan_len1", fun a -> { a with Arch.chan_len1 = 0 });
    ("bad-chan-len4", "chan_len4", fun a -> { a with Arch.chan_len4 = -2 });
    ("bad-chan-global", "chan_global", fun a -> { a with Arch.chan_global = 0 });
    ("bad-fs", "fs", fun a -> { a with Arch.fs = 0 });
    ("bad-fc-in", "fc_in", fun a -> { a with Arch.fc_in = 0.0 });
    ("bad-fc-in", "fc_in", fun a -> { a with Arch.fc_in = 1.5 });
    ("bad-fc-out", "fc_out", fun a -> { a with Arch.fc_out = -0.25 });
    ("bad-t-lut", "t_lut", fun a -> { a with Arch.t_lut = -1.0 });
    ("bad-t-local", "t_local", fun a -> { a with Arch.t_local = -1.0 });
    ("bad-t-reconf", "t_reconf", fun a -> { a with Arch.t_reconf = -1.0 });
    ("bad-t-setup", "t_setup", fun a -> { a with Arch.t_setup = -1.0 });
    ("bad-smb-area", "smb_area", fun a -> { a with Arch.smb_area = -1.0 }) ]

let prop_mutations_rejected =
  QCheck.Test.make ~count:60
    ~name:"each malformed field rejected with its typed code" arb_arch
    (fun params ->
      let a = arch_of_params params in
      List.for_all
        (fun (code, field, mutate) ->
          match Arch.validate_result (mutate a) with
          | Ok () ->
            QCheck.Test.fail_reportf "mutation %s/%s accepted" code field
          | Error d ->
            if d.Diag.code <> code then
              QCheck.Test.fail_reportf "mutation of %s: wanted code %s, got %s"
                field code d.Diag.code
            else if d.Diag.stage <> "arch" then
              QCheck.Test.fail_reportf "diagnostic stage %s, wanted arch"
                d.Diag.stage
            else if not (List.mem ("field", field) d.Diag.context) then
              QCheck.Test.fail_reportf
                "diagnostic for %s does not carry its field context" field
            else true)
        mutations)

(* ------------------------- differential oracle at non-default points *)

(* Five non-default architecture points spanning the explored knob space:
   small and large K, skinny and fat clusters, non-default switch-block
   and connection-block flexibility. *)
let oracle_points =
  [ ("k3-narrow", Explore.arch_point ~k:3 ~les_per_mb:2 ~mbs_per_smb:2 ());
    ("k3-fat", Explore.arch_point ~k:3 ~les_per_mb:8 ~mbs_per_smb:4 ());
    ("k5", Explore.arch_point ~k:5 ~les_per_mb:4 ~mbs_per_smb:4 ());
    ("k6-fs6", Explore.arch_point ~k:6 ~les_per_mb:4 ~mbs_per_smb:2 ~fs:6 ());
    ("k4-fc-half",
     Explore.arch_point ~k:4 ~les_per_mb:6 ~mbs_per_smb:4 ~fc:0.5 ()) ]

let oracle_foldings =
  [ ("none", Flow.No_folding); ("l1", Flow.Fixed_level 1);
    ("l2", Flow.Fixed_level 2) ]

let oracle_mappers = [ ("tt", Mapper.Truth_table); ("aig", Mapper.Aig) ]

let oracle_options ~objective ~mapper =
  { Flow.default_options with
    Flow.objective;
    mapper;
    physical = true;
    check_level = Check.Full;
    jobs = 1 }

let gen_params = { Gen_rtl.default_params with Gen_rtl.steps = 16 }

let random_design seed =
  let rng = Rng.create seed in
  Gen_rtl.build ~name:(Printf.sprintf "archfuzz%d" seed)
    (Gen_rtl.random_spec rng gen_params)

(* Random RTL through the whole flow at a non-default architecture, then
   the four-level oracle (rtl-sim / lut-network / fabric-emulator /
   bitstream-replay in lockstep). A flow that legitimately cannot fit the
   design (e.g. too many inputs for a tiny cluster) is not a failure; a
   mismatch or a level fault always is. *)
let test_oracle_at_point arch (fname, objective) (mname, mapper) () =
  let seeds = [ 11; 12; 13 ] in
  let ran = ref 0 in
  List.iter
    (fun seed ->
      let design = random_design seed in
      match
        Flow.run_result ~options:(oracle_options ~objective ~mapper) ~arch
          design
      with
      | Error _ -> ()
      | Ok report ->
        incr ran;
        (match Oracle.run ~cycles:24 ~seed (Oracle.subject_of_report report) with
        | Oracle.Pass _ -> ()
        | outcome ->
          Alcotest.fail
            (Printf.sprintf "seed %d %s/%s: %s" seed fname mname
               (Oracle.describe outcome))))
    seeds;
  if !ran = 0 then
    Alcotest.fail "no random design completed the flow at this point"

let oracle_cases =
  List.concat_map
    (fun (pname, arch) ->
      List.concat_map
        (fun folding ->
          List.map
            (fun mapper ->
              let name =
                Printf.sprintf "%s fold=%s %s" pname (fst folding) (fst mapper)
              in
              Alcotest.test_case name `Slow
                (test_oracle_at_point arch folding mapper))
            oracle_mappers)
        oracle_foldings)
    oracle_points

(* ----------------------------------------------- K=3 / K=6 regressions *)

(* Cut enumeration respects the LUT size bound at both extremes, and the
   chosen cuts' truth tables carry the matching arity. *)
let test_cut_bounds k () =
  let g = Aig.create () in
  let ins = Array.init 9 (fun _ -> Aig.add_input g) in
  let x = Aig.mk_xor g ins.(0) ins.(1) in
  let y = Aig.mk_or g (Aig.mk_and g x ins.(2)) ins.(3) in
  let z = Aig.mk_xor g (Aig.mk_and g y ins.(4)) (Aig.mk_or g ins.(5) ins.(6)) in
  let root = Aig.mk_mux g z ins.(7) (Aig.mk_and g ins.(8) y) in
  let m = Cut.compute ~k g ~roots:[ root ] in
  let chosen = ref 0 in
  Array.iteri
    (fun n choice ->
      if choice >= 0 then begin
        incr chosen;
        let cut = m.Cut.cuts.(n).(choice) in
        let leaves = Array.length cut.Cut.leaves in
        if leaves > k then
          Alcotest.fail
            (Printf.sprintf "node %d: chosen cut has %d leaves > k=%d" n
               leaves k);
        check Alcotest.int
          (Printf.sprintf "node %d truth-table arity" n)
          leaves
          (Truth_table.arity cut.Cut.func)
      end)
    m.Cut.choice;
  check Alcotest.bool "some cut chosen" true (!chosen > 0)

(* Bitstream LUT fields are ceil(2^K / 8) bytes: the encoded size moves
   with K and the round-trip preserves full-width truth tables. *)
let le ~tt ~used =
  { Bitstream.le_smb = 0; le_mb = 0; le_index = 0; truth_table = tt;
    used_inputs = used }

let test_bitstream_lut_field k () =
  let tt_bytes = ((1 lsl k) + 7) / 8 in
  let full_tt =
    if 1 lsl k >= 64 then -1L
    else Int64.sub (Int64.shift_left 1L (1 lsl k)) 1L
  in
  let configs =
    [| { Bitstream.les = [ le ~tt:full_tt ~used:k; le ~tt:5L ~used:2 ];
         switches = [ { Bitstream.rr_node = 3; wire_tag = 2 } ] };
       { Bitstream.les = [ le ~tt:1L ~used:1 ]; switches = [] } |]
  in
  let bytes = Bitstream.encode_configs ~num_smbs:1 ~lut_inputs:k configs in
  let num_smbs, k', configs' = Bitstream.parse_full bytes in
  check Alcotest.int "num_smbs" 1 num_smbs;
  check Alcotest.int "lut_inputs round-trips" k k';
  check Alcotest.int "config count" 2 (Array.length configs');
  let les0 = configs'.(0).Bitstream.les in
  check Alcotest.int "les in config 0" 2 (List.length les0);
  List.iter2
    (fun (want : Bitstream.le_config) (got : Bitstream.le_config) ->
      check Alcotest.bool "truth table survives" true
        (Int64.equal want.Bitstream.truth_table got.Bitstream.truth_table))
    configs.(0).Bitstream.les les0;
  (* one more/fewer byte per LUT as K moves: re-encode with one extra LE
     and verify the length delta is exactly the field size *)
  let with_extra =
    [| { (configs.(0)) with Bitstream.les = le ~tt:0L ~used:0 :: configs.(0).Bitstream.les } |]
  in
  let base = [| configs.(0) |] in
  let len0 =
    Bytes.length (Bitstream.encode_configs ~num_smbs:1 ~lut_inputs:k base)
  in
  let len1 =
    Bytes.length (Bitstream.encode_configs ~num_smbs:1 ~lut_inputs:k with_extra)
  in
  check Alcotest.bool "per-LE delta covers the LUT field" true
    (len1 - len0 >= tt_bytes)

(* A malformed K byte in the header is a parse error, not garbage data. *)
let test_bitstream_bad_k () =
  let bytes =
    Bitstream.encode_configs ~num_smbs:1 ~lut_inputs:4
      [| { Bitstream.les = []; switches = [] } |]
  in
  Bytes.set bytes 13 (Char.chr (Truth_table.max_arity + 1));
  match Bitstream.parse_full bytes with
  | exception _ -> ()
  | _ -> Alcotest.fail "parse_full accepted lut_inputs > max_arity"

(* Truth-table widths at the extremes: arity-3 tables live in 8 bits,
   arity-6 in all 64, and of_bits masks excess bits at small arities. *)
let test_truth_table_widths () =
  check Alcotest.int "max arity" 6 Truth_table.max_arity;
  let t3 = Truth_table.of_bits ~arity:3 0xFFFFL in
  check Alcotest.bool "arity-3 masks to 8 bits" true
    (Int64.equal (Truth_table.bits t3) 0xFFL);
  let t6 = Truth_table.of_fun ~arity:6 (fun v -> v.(5)) in
  check Alcotest.bool "arity-6 uses the high bits" true
    (Int64.equal (Truth_table.bits t6) 0xFFFFFFFF00000000L);
  check Alcotest.int "arity survives" 6 (Truth_table.arity t6)

(* End-to-end: a real benchmark flows at K=3 and K=6 with full checking,
   and the resulting bitstream parses back with the right K. *)
let test_flow_at_k k () =
  let bench = Nanomap_circuits.Circuits.by_name "ex1_small" in
  let arch = Explore.arch_point ~k () in
  let options =
    { Flow.default_options with
      Flow.objective = Flow.No_folding;
      physical = true;
      check_level = Check.Full;
      jobs = 1 }
  in
  match Flow.run_result ~options ~arch bench.Nanomap_circuits.Circuits.design with
  | Error d -> Alcotest.fail (Printf.sprintf "flow failed at K=%d: %s" k d.Diag.code)
  | Ok report ->
    (match report.Flow.bitstream with
    | None -> Alcotest.fail "physical flow produced no bitstream"
    | Some bs ->
      let _, k', _ = Bitstream.parse_full bs.Bitstream.bytes in
      check Alcotest.int "bitstream K" k k')

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "arch"
    [ ( "validate",
        [ to_alco prop_generator_valid; to_alco prop_mutations_rejected ] );
      ("oracle", oracle_cases);
      ( "k-extremes",
        [ Alcotest.test_case "cut bounds K=3" `Quick (test_cut_bounds 3);
          Alcotest.test_case "cut bounds K=6" `Quick (test_cut_bounds 6);
          Alcotest.test_case "bitstream LUT field K=3" `Quick
            (test_bitstream_lut_field 3);
          Alcotest.test_case "bitstream LUT field K=6" `Quick
            (test_bitstream_lut_field 6);
          Alcotest.test_case "bitstream rejects bad K" `Quick
            test_bitstream_bad_k;
          Alcotest.test_case "truth-table widths" `Quick
            test_truth_table_widths;
          Alcotest.test_case "flow at K=3" `Slow (test_flow_at_k 3);
          Alcotest.test_case "flow at K=6" `Slow (test_flow_at_k 6) ] ) ]
