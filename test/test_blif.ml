module Blif = Nanomap_blif.Blif
module Gate_netlist = Nanomap_logic.Gate_netlist

let check = Alcotest.check

let sample =
  {|# a tiny sequential model
.model counter
.inputs en
.outputs q0 q1
.latch n0 s0 re clk 0
.latch n1 s1 re clk 0
.names en s0 n0
10 1
01 1
.names en s0 s1 n1
011 1
101 1
110 1
.names s0 q0
1 1
.names s1 q1
1 1
.end
|}

let test_parse_basic () =
  let m = Blif.parse_string sample in
  check Alcotest.string "name" "counter" m.Blif.name;
  check (Alcotest.list Alcotest.string) "inputs" [ "en" ] m.Blif.model_inputs;
  check (Alcotest.list Alcotest.string) "outputs" [ "q0"; "q1" ] m.Blif.model_outputs;
  check Alcotest.int "latches" 2 (List.length m.Blif.latches);
  check Alcotest.int "nodes" 4 (List.length m.Blif.nodes)

let test_parse_continuation () =
  let text = ".model m\n.inputs a \\\nb\n.outputs x\n.names a b x\n11 1\n.end\n" in
  let m = Blif.parse_string text in
  check (Alcotest.list Alcotest.string) "continued inputs" [ "a"; "b" ] m.Blif.model_inputs

let test_parse_comments () =
  let text = ".model m # comment\n.inputs a\n.outputs x\n.names a x\n1 1 # cube\n.end\n" in
  let m = Blif.parse_string text in
  check Alcotest.int "one node" 1 (List.length m.Blif.nodes)

let test_parse_errors () =
  let bad fragment =
    match Blif.parse_string fragment with
    | exception Blif.Parse_error _ -> true
    | exception Failure _ -> true
    | _ -> false
  in
  check Alcotest.bool "no model" true (bad ".inputs a\n.end\n");
  check Alcotest.bool "bad cube" true (bad ".model m\n.names a x\n2 1\n.end\n");
  check Alcotest.bool "cube width" true (bad ".model m\n.names a b x\n1 1\n.end\n");
  check Alcotest.bool "mixed cover" true
    (bad ".model m\n.names a b x\n11 1\n00 0\n.end\n")

(* Errors must carry the (1-based) line number and quote the offending
   token or signal. *)
let test_parse_error_details () =
  let expect_err fragment pred label =
    match Blif.parse_string fragment with
    | exception Blif.Parse_error (line, msg) ->
      check Alcotest.bool (label ^ ": " ^ msg) true (pred line msg)
    | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" label
  in
  let contains msg sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
    in
    go 0
  in
  expect_err ".model m\n.inputs a\n.names a x\n2 1\n.end\n"
    (fun line msg -> line = 4 && contains msg "'2'")
    "bad cube token";
  expect_err ".model m\n.inputs a\n.names a x\n1 maybe\n.end\n"
    (fun line msg -> line = 4 && contains msg "'maybe'")
    "bad cube value token";
  expect_err ".model m\n.frobnicate a\n.end\n"
    (fun line msg -> line = 2 && contains msg ".frobnicate")
    "unknown directive named"

let test_parse_duplicate_output () =
  let expect_err fragment label =
    match Blif.parse_string fragment with
    | exception Blif.Parse_error (_, msg) ->
      check Alcotest.bool label true
        (String.length msg > 0
         &&
         let rec has i =
           i + 1 <= String.length msg && (msg.[i] = '\'' || has (i + 1))
         in
         has 0)
    | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" label
  in
  (* two .names driving the same signal *)
  expect_err ".model m\n.inputs a b\n.outputs x\n.names a x\n1 1\n.names b x\n1 1\n.end\n"
    "duplicate .names output";
  (* .names output colliding with a latch output *)
  expect_err ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.names a q\n1 1\n.end\n"
    "names vs latch output";
  (* .names output colliding with a model input *)
  expect_err ".model m\n.inputs a\n.outputs a\n.names a a\n1 1\n.end\n"
    "names vs model input"

let test_parse_dangling_latch () =
  (match
     Blif.parse_string
       ".model m\n.inputs a\n.outputs q\n.latch ghost q re clk 0\n.end\n"
   with
  | exception Blif.Parse_error (line, msg) ->
    check Alcotest.int "latch line" 4 line;
    check Alcotest.bool "names the signal" true
      (let n = String.length msg in
       let sub = "'ghost'" in
       let m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "dangling latch input accepted");
  (* a latch fed by a later .names is fine (order-independent) *)
  let m =
    Blif.parse_string
      ".model m\n.inputs a\n.outputs q\n.latch n q re clk 0\n.names a n\n1 1\n.end\n"
  in
  check Alcotest.int "forward-referenced latch ok" 1 (List.length m.Blif.latches)

let test_cover_semantics () =
  let node =
    { Blif.inputs = [ "a"; "b" ];
      output = "x";
      cover = [ { Blif.mask = "1-"; value = true }; { Blif.mask = "01"; value = true } ] }
  in
  (* x = a OR (!a AND b)  = a or b *)
  check Alcotest.bool "10" true (Blif.cover_value node [| true; false |]);
  check Alcotest.bool "01" true (Blif.cover_value node [| false; true |]);
  check Alcotest.bool "00" false (Blif.cover_value node [| false; false |])

let test_cover_offset () =
  let node =
    { Blif.inputs = [ "a"; "b" ];
      output = "x";
      cover = [ { Blif.mask = "11"; value = false } ] }
  in
  (* OFF-set cover: x = NOT (a AND b) = nand *)
  check Alcotest.bool "11" false (Blif.cover_value node [| true; true |]);
  check Alcotest.bool "10" true (Blif.cover_value node [| true; false |])

let test_lower_combinational_equiv () =
  let m = Blif.parse_string sample in
  let lowered = Blif.lower m in
  let nl = lowered.Blif.netlist in
  (* Inputs of the lowered netlist: model inputs then latch outputs. *)
  let input_names = List.map fst (Gate_netlist.inputs nl) in
  check (Alcotest.list Alcotest.string) "inputs" [ "en"; "s0"; "s1" ] input_names;
  (* Compare against cover_value on all input combinations. *)
  let node_by_output o = List.find (fun n -> n.Blif.output = o) m.Blif.nodes in
  for v = 0 to 7 do
    let en = v land 1 = 1 and s0 = v land 2 <> 0 and s1 = v land 4 <> 0 in
    let outs = Gate_netlist.output_values nl [| en; s0; s1 |] in
    let expect_n0 = Blif.cover_value (node_by_output "n0") [| en; s0 |] in
    let expect_n1 = Blif.cover_value (node_by_output "n1") [| en; s0; s1 |] in
    check Alcotest.bool "latch n0 input" expect_n0 (List.assoc "$latch.s0" outs);
    check Alcotest.bool "latch n1 input" expect_n1 (List.assoc "$latch.s1" outs);
    check Alcotest.bool "q0" s0 (List.assoc "q0" outs)
  done

let test_lower_cycle_detection () =
  let text = ".model m\n.inputs a\n.outputs x\n.names x a y\n11 1\n.names y a x\n11 1\n.end\n" in
  let m = Blif.parse_string text in
  check Alcotest.bool "cycle rejected" true
    (match Blif.lower m with exception Failure _ -> true | _ -> false)

let test_lower_undefined_signal () =
  let text = ".model m\n.inputs a\n.outputs x\n.names a ghost x\n11 1\n.end\n" in
  let m = Blif.parse_string text in
  check Alcotest.bool "undefined rejected" true
    (match Blif.lower m with exception Failure _ -> true | _ -> false)

let test_constant_nodes () =
  let text = ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n" in
  let m = Blif.parse_string text in
  let lowered = Blif.lower m in
  let outs = Gate_netlist.output_values lowered.Blif.netlist [| false |] in
  check Alcotest.bool "const one" true (List.assoc "one" outs);
  check Alcotest.bool "const zero" false (List.assoc "zero" outs)

let test_roundtrip () =
  let m = Blif.parse_string sample in
  let text = Blif.write_model m in
  let m2 = Blif.parse_string text in
  check Alcotest.string "name" m.Blif.name m2.Blif.name;
  check Alcotest.int "nodes" (List.length m.Blif.nodes) (List.length m2.Blif.nodes);
  check Alcotest.int "latches" (List.length m.Blif.latches) (List.length m2.Blif.latches);
  (* Functional identity on the combinational part. *)
  let l1 = Blif.lower m and l2 = Blif.lower m2 in
  for v = 0 to 7 do
    let ins = [| v land 1 = 1; v land 2 <> 0; v land 4 <> 0 |] in
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
      "outputs equal"
      (Gate_netlist.output_values l1.Blif.netlist ins)
      (Gate_netlist.output_values l2.Blif.netlist ins)
  done

let () =
  Alcotest.run "blif"
    [ ( "parse",
        [ Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "continuation" `Quick test_parse_continuation;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error details" `Quick test_parse_error_details;
          Alcotest.test_case "duplicate output" `Quick test_parse_duplicate_output;
          Alcotest.test_case "dangling latch" `Quick test_parse_dangling_latch ] );
      ( "cover",
        [ Alcotest.test_case "on-set" `Quick test_cover_semantics;
          Alcotest.test_case "off-set" `Quick test_cover_offset ] );
      ( "lower",
        [ Alcotest.test_case "equivalence" `Quick test_lower_combinational_equiv;
          Alcotest.test_case "cycle" `Quick test_lower_cycle_detection;
          Alcotest.test_case "undefined" `Quick test_lower_undefined_signal;
          Alcotest.test_case "constants" `Quick test_constant_nodes ] );
      ("roundtrip", [ Alcotest.test_case "write/parse" `Quick test_roundtrip ]) ]
