(* Integration tests of the command-line driver: every subcommand runs,
   produces the expected artifacts, and fails cleanly on bad input. *)

let check = Alcotest.check

(* The test binary runs under _build/default/test; the CLI executable is a
   sibling. Hunt upward like test_designs does for robustness. *)
let cli =
  let rec hunt dir depth =
    let candidates =
      [ Filename.concat dir "bin/nanomap_cli.exe";
        Filename.concat dir "_build/default/bin/nanomap_cli.exe" ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some c -> c
    | None ->
      if depth > 8 then failwith "nanomap_cli.exe not found"
      else hunt (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  hunt (Sys.getcwd ()) 0

let run args =
  let cmd = Printf.sprintf "%s %s > /tmp/nanomap_cli_test.out 2>&1" cli args in
  let code = Sys.command cmd in
  let ic = open_in "/tmp/nanomap_cli_test.out" in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  (code, out)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let test_list () =
  let code, out = run "list" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "mentions ex1" true (contains out "ex1");
  check Alcotest.bool "mentions ASPP4" true (contains out "ASPP4")

let test_stats () =
  let code, out = run "stats -c biquad" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "plane count" true (contains out "planes: 1")

let test_map_logical () =
  let code, out = run "map -c ex1-4bit --logical" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "reports LEs" true (contains out "LEs")

let test_map_trace_json () =
  let code, out =
    run "map -c ex1-4bit --trace --json /tmp/nanomap_test_tele.json" in
  check Alcotest.int "exit 0" 0 code;
  (* per-stage table with counters from all four instrumented layers *)
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in trace") true (contains out needle))
    [ "place_detailed"; "fds."; "cluster."; "place.moves_tried"; "route." ];
  check Alcotest.bool "json written" true
    (Sys.file_exists "/tmp/nanomap_test_tele.json");
  let ic = open_in "/tmp/nanomap_test_tele.json" in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check Alcotest.bool "json names the run" true
    (contains json "\"run\":\"flow:ex1-4bit\"")

let test_map_physical_with_bitstream () =
  let code, out =
    run "map -c ex1-4bit --level 2 --bitstream /tmp/nanomap_test.nmap" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "routing legal" true (contains out "routing: legal");
  check Alcotest.bool "bitstream written" true (Sys.file_exists "/tmp/nanomap_test.nmap")

let test_disasm () =
  (* depends on the bitstream produced above; regenerate defensively *)
  ignore (run "map -c ex1-4bit --level 2 --bitstream /tmp/nanomap_test.nmap");
  let code, out = run "disasm /tmp/nanomap_test.nmap" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "prints configurations" true (contains out "configurations")

let test_emulate () =
  let code, out = run "emulate -c ex1-4bit --level 2 --cycles 50" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "no mismatches" true (contains out "0 mismatches")

let test_sweep () =
  let code, out = run "sweep -c c5315 -k 0" in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "has level column" true (contains out "Level")

let test_map_infeasible () =
  let code, _ = run "map -c ex1-4bit -o delay --area 1 --logical" in
  check Alcotest.bool "nonzero exit" true (code <> 0)

let test_unknown_circuit () =
  let code, out = run "map -c nonsense" in
  check Alcotest.bool "nonzero exit" true (code <> 0);
  check Alcotest.bool "error message" true (contains out "unknown benchmark")

let test_dump_blif_feeds_back () =
  (* the exported BLIF must itself be a valid flow input *)
  let code, _ = run "map -c ex1-4bit --logical --dump-blif /tmp/nanomap_test.blif" in
  check Alcotest.int "export ok" 0 code;
  let code, out = run "stats --blif /tmp/nanomap_test.blif" in
  check Alcotest.int "reimport ok" 0 code;
  check Alcotest.bool "has LUTs" true (contains out "LUTs")

let () =
  Alcotest.run "cli"
    [ ( "subcommands",
        [ Alcotest.test_case "list" `Quick test_list;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "map logical" `Quick test_map_logical;
          Alcotest.test_case "map trace + json" `Quick test_map_trace_json;
          Alcotest.test_case "map + bitstream" `Quick test_map_physical_with_bitstream;
          Alcotest.test_case "disasm" `Quick test_disasm;
          Alcotest.test_case "emulate" `Quick test_emulate;
          Alcotest.test_case "sweep" `Quick test_sweep ] );
      ( "errors",
        [ Alcotest.test_case "infeasible budget" `Quick test_map_infeasible;
          Alcotest.test_case "unknown circuit" `Quick test_unknown_circuit ] );
      ( "interop",
        [ Alcotest.test_case "blif export feeds back" `Quick test_dump_blif_feeds_back ] ) ]
