module Rtl = Nanomap_rtl.Rtl
module Truth_table = Nanomap_logic.Truth_table
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Fold = Nanomap_core.Fold
module Sched = Nanomap_core.Sched
module Fds = Nanomap_core.Fds
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch

let check = Alcotest.check

(* --- Fold: the paper's motivational example numbers --- *)

let test_fold_motivational_example () =
  (* Section 3: 50 LUTs, area constraint 32 LEs -> 2 stages; depth 9 ->
     initial level 5; refined to level 4 -> 3 stages. *)
  check Alcotest.int "Eq.1 stages" 2 (Fold.min_stages ~lut_max:50 ~available_le:32);
  check Alcotest.int "Eq.2 level" 5 (Fold.level_for_stages ~depth_max:9 ~stages:2);
  check Alcotest.int "level 4 -> 3 stages" 3 (Fold.stages_for_level ~depth:9 ~level:4)

let test_fold_min_level () =
  (* Eq. 3 with the Table 1 k=16 instances. *)
  check Alcotest.int "ex1: depth 24, 1 plane, k=16" 2
    (Fold.min_level ~depth_max:24 ~num_planes:1 ~num_reconf:(Some 16));
  check Alcotest.int "c5315: depth 14, 1 plane, k=16" 1
    (Fold.min_level ~depth_max:14 ~num_planes:1 ~num_reconf:(Some 16));
  check Alcotest.int "unbounded k" 1
    (Fold.min_level ~depth_max:100 ~num_planes:4 ~num_reconf:None)

let test_fold_pipelined () =
  (* Eq. 4. *)
  check Alcotest.int "pipelined level" 3
    (Fold.level_pipelined ~depth_max:10 ~available_le:30 ~total_luts:100);
  check Alcotest.int "stage budget" 5
    (match Fold.max_stages_allowed ~num_planes:3 ~num_reconf:(Some 16) with
     | Some s -> s
     | None -> -1)

(* --- a hand-built 5-unit scheduling problem reproducing Fig. 4 ---

   network: A = lut(in0), B = lut(in1), C = lut(A), D = lut(B), E = lut(B,C)
   precedence: A->C, B->D, B->E, C->E; 3 folding stages.
   ASAP: A1 B1 C2 D2 E3.  ALAP: A1 B2 C2 D3 E3.
   Fig. 4 storage for B: ASAP_life [2,3] (len 2), ALAP_life [3,3] (len 1),
   max_life [2,3] (len 2, Eq. 6), overlap [3,3] (len 1, Eq. 7),
   avg_life 5/3 (Eq. 8). *)
let fig4_problem () =
  let nw = Lut_network.create () in
  let in0 = Lut_network.add_input nw (Lut_network.Pi_bit (0, 0)) in
  let in1 = Lut_network.add_input nw (Lut_network.Pi_bit (1, 0)) in
  let buf = Truth_table.var ~arity:1 0 in
  let and2 = Truth_table.of_fun ~arity:2 (fun i -> i.(0) && i.(1)) in
  let a = Lut_network.add_lut nw ~name:"A" ~module_id:(-1) ~func:buf ~fanins:[| in0 |] () in
  let b = Lut_network.add_lut nw ~name:"B" ~module_id:(-1) ~func:buf ~fanins:[| in1 |] () in
  let c = Lut_network.add_lut nw ~name:"C" ~module_id:(-1) ~func:buf ~fanins:[| a |] () in
  let d = Lut_network.add_lut nw ~name:"D" ~module_id:(-1) ~func:buf ~fanins:[| b |] () in
  let e = Lut_network.add_lut nw ~name:"E" ~module_id:(-1) ~func:and2 ~fanins:[| b; c |] () in
  Lut_network.mark_output nw (Lut_network.Po_target "d") d;
  Lut_network.mark_output nw (Lut_network.Po_target "e") e;
  let part = Partition.partition nw ~level:1 in
  Partition.validate part;
  let prob = Sched.problem nw part ~stages:3 ~base_ff_bits:0 in
  (prob, (a, b, c, d, e))

let test_frames_fig4 () =
  let prob, (a, b, c, d, e) = fig4_problem () in
  let unit_of l = prob.Sched.part.Partition.unit_of_lut.(l) in
  let fixed = Array.make 5 None in
  let fr = Sched.frames prob ~fixed in
  let expect name l asap alap =
    check Alcotest.int (name ^ " asap") asap fr.Sched.asap.(unit_of l);
    check Alcotest.int (name ^ " alap") alap fr.Sched.alap.(unit_of l)
  in
  expect "A" a 1 1;
  expect "B" b 1 2;
  expect "C" c 2 2;
  expect "D" d 2 3;
  expect "E" e 3 3

let test_storage_lifetime_fig4 () =
  let prob, (_, b, _, _, _) = fig4_problem () in
  let unit_of l = prob.Sched.part.Partition.unit_of_lut.(l) in
  let fixed = Array.make 5 None in
  let fr = Sched.frames prob ~fixed in
  match Sched.intermediate_lifetime prob fr (unit_of b) with
  | None -> Alcotest.fail "B has storage"
  | Some lt ->
    check (Alcotest.pair Alcotest.int Alcotest.int) "ASAP_life" (2, 3) lt.Sched.asap_life;
    check (Alcotest.pair Alcotest.int Alcotest.int) "ALAP_life" (3, 3) lt.Sched.alap_life;
    check (Alcotest.pair Alcotest.int Alcotest.int) "max_life (Eq.6)" (2, 3) lt.Sched.max_life;
    check (Alcotest.pair Alcotest.int Alcotest.int) "overlap (Eq.7)" (3, 3) lt.Sched.overlap;
    check (Alcotest.float 1e-9) "avg_life (Eq.8)" (5.0 /. 3.0) lt.Sched.avg_life

let test_lut_dg_conservation () =
  let prob, _ = fig4_problem () in
  let fixed = Array.make 5 None in
  let fr = Sched.frames prob ~fixed in
  let dg = Sched.lut_dg prob fr in
  let total = Array.fold_left ( +. ) 0.0 dg in
  check (Alcotest.float 1e-9) "DG mass = total weight" 5.0 total;
  (* every entry non-negative *)
  Array.iter (fun v -> check Alcotest.bool "dg >= 0" true (v >= 0.0)) dg

let test_storage_dg_bounds () =
  let prob, _ = fig4_problem () in
  let fixed = Array.make 5 None in
  let fr = Sched.frames prob ~fixed in
  let dg = Sched.storage_dg prob fr in
  Array.iter (fun v -> check Alcotest.bool "dg >= 0" true (v >= 0.0)) dg;
  check Alcotest.bool "cycle 0 empty" true (dg.(0) = 0.0)

let test_fds_valid_and_balanced () =
  let prob, _ = fig4_problem () in
  let arch = Arch.default in
  let sched = Fds.schedule prob ~arch in
  Sched.check_schedule prob sched;
  let les_fds = Sched.les_needed prob ~arch sched in
  let asap = Fds.asap_schedule prob in
  let les_asap = Sched.les_needed prob ~arch asap in
  check Alcotest.bool "FDS no worse than ASAP" true (les_fds <= les_asap)

let test_asap_alap_are_valid () =
  let prob, _ = fig4_problem () in
  Sched.check_schedule prob (Fds.asap_schedule prob);
  Sched.check_schedule prob (Fds.alap_schedule prob)

let test_infeasible_stages () =
  let nw = Lut_network.create () in
  let i0 = Lut_network.add_input nw (Lut_network.Pi_bit (0, 0)) in
  let buf = Truth_table.var ~arity:1 0 in
  let a = Lut_network.add_lut nw ~module_id:(-1) ~func:buf ~fanins:[| i0 |] () in
  let b = Lut_network.add_lut nw ~module_id:(-1) ~func:buf ~fanins:[| a |] () in
  let c = Lut_network.add_lut nw ~module_id:(-1) ~func:buf ~fanins:[| b |] () in
  Lut_network.mark_output nw (Lut_network.Po_target "c") c;
  let part = Partition.partition nw ~level:1 in
  check Alcotest.bool "3-chain in 2 stages infeasible" true
    (match Sched.problem nw part ~stages:2 ~base_ff_bits:0 with
     | exception Sched.Infeasible _ -> true
     | _ -> false)

(* --- FDS balances an imbalanced parallel graph --- *)

let test_fds_balances_parallel_work () =
  (* 8 independent 1-LUT units, 4 stages: ASAP piles all in cycle 1; FDS
     should spread them out to ~2 per stage. *)
  let nw = Lut_network.create () in
  let i0 = Lut_network.add_input nw (Lut_network.Pi_bit (0, 0)) in
  let i1 = Lut_network.add_input nw (Lut_network.Pi_bit (1, 0)) in
  let and2 = Truth_table.of_fun ~arity:2 (fun i -> i.(0) && i.(1)) in
  let luts =
    List.init 8 (fun i ->
        Lut_network.add_lut nw
          ~name:(Printf.sprintf "p%d" i)
          ~module_id:(-1) ~func:and2 ~fanins:[| i0; i1 |] ())
  in
  List.iteri
    (fun i l ->
      Lut_network.mark_output nw (Lut_network.Po_target (Printf.sprintf "o%d" i)) l)
    luts;
  let part = Partition.partition nw ~level:1 in
  let prob = Sched.problem nw part ~stages:4 ~base_ff_bits:0 in
  let arch = Arch.default in
  let sched = Fds.schedule prob ~arch in
  let counts = Sched.lut_count_per_stage prob sched in
  let maxc = Array.fold_left max 0 counts in
  check Alcotest.bool "FDS spreads independent LUTs" true (maxc <= 3);
  let asap_counts = Sched.lut_count_per_stage prob (Fds.asap_schedule prob) in
  check Alcotest.int "ASAP piles up" 8 asap_counts.(1)

(* --- Mapper end-to-end on a small design --- *)

let small_design () =
  let d = Rtl.create "small" in
  let x = Rtl.add_input d "x" 6 in
  let s = Rtl.add_register d ~name:"s" ~width:1 () in
  let acc = Rtl.add_register d ~name:"acc" ~width:6 () in
  let sum = Rtl.add_op d ~width:6 (Rtl.Add (acc, x)) in
  let prod = Rtl.add_op d ~width:12 (Rtl.Mult (acc, x)) in
  let prod_lo = Rtl.add_op d ~width:6 (Rtl.Slice (prod, 0)) in
  let next = Rtl.add_op d ~width:6 (Rtl.Mux (s, sum, prod_lo)) in
  Rtl.connect_register d acc ~d:next;
  Rtl.connect_register d s ~d:(Rtl.add_op d ~width:1 (Rtl.Bit_not s));
  Rtl.mark_output d "acc" next;
  d

let test_mapper_no_folding () =
  let p = Mapper.prepare (small_design ()) in
  let plan = Mapper.no_folding p ~arch:Arch.default in
  check Alcotest.int "one stage" 1 plan.Mapper.stages;
  check Alcotest.int "LEs = LUT count" p.Mapper.lut_max plan.Mapper.les

let test_mapper_folding_reduces_les () =
  let p = Mapper.prepare (small_design ()) in
  let arch = Arch.unbounded_k in
  let nf = Mapper.no_folding p ~arch in
  let l1 = Mapper.plan_level p ~arch ~level:1 in
  check Alcotest.bool "folding reduces LEs" true (l1.Mapper.les < nf.Mapper.les);
  check Alcotest.bool "folding increases delay" true
    (l1.Mapper.delay_ns > nf.Mapper.delay_ns)

let test_mapper_delay_min_respects_area () =
  let p = Mapper.prepare (small_design ()) in
  let arch = Arch.unbounded_k in
  let budget = (Mapper.plan_level p ~arch ~level:1).Mapper.les + 5 in
  let plan = Mapper.delay_min ~area:budget p ~arch in
  check Alcotest.bool "fits budget" true (plan.Mapper.les <= budget);
  (* a looser budget can only improve (or keep) delay *)
  let plan2 = Mapper.delay_min ~area:(budget * 4) p ~arch in
  check Alcotest.bool "looser budget, no worse delay" true
    (plan2.Mapper.delay_ns <= plan.Mapper.delay_ns)

let test_mapper_at_min_best_product () =
  let p = Mapper.prepare (small_design ()) in
  let arch = Arch.unbounded_k in
  let best = Mapper.at_min p ~arch in
  let product pl = float_of_int pl.Mapper.les *. pl.Mapper.delay_ns in
  List.iter
    (fun (_, pl) ->
      check Alcotest.bool "at_min is minimal" true (product best <= product pl +. 1e-9))
    (Mapper.sweep p ~arch);
  let nf = Mapper.no_folding p ~arch in
  check Alcotest.bool "beats no-folding" true (product best <= product nf +. 1e-9)

let test_mapper_infeasible_area () =
  let p = Mapper.prepare (small_design ()) in
  check Alcotest.bool "1 LE impossible" true
    (match Mapper.delay_min ~area:1 p ~arch:Arch.unbounded_k with
     | exception Mapper.No_feasible_mapping _ -> true
     | _ -> false)

let test_mapper_k_limits_levels () =
  let p = Mapper.prepare (small_design ()) in
  let k2 = Arch.with_num_reconf Arch.default (Some 2) in
  List.iter
    (fun (_, pl) ->
      check Alcotest.bool "configs within k" true (pl.Mapper.configs_used <= 2))
    (Mapper.sweep p ~arch:k2)

let test_mapper_area_min () =
  let p = Mapper.prepare (small_design ()) in
  let arch = Arch.unbounded_k in
  let plan = Mapper.area_min p ~arch in
  List.iter
    (fun (_, pl) ->
      check Alcotest.bool "area_min minimal" true (plan.Mapper.les <= pl.Mapper.les))
    (Mapper.sweep p ~arch)

let test_mapper_both_constraints () =
  let p = Mapper.prepare (small_design ()) in
  let arch = Arch.unbounded_k in
  let loose = Mapper.no_folding p ~arch in
  let plan =
    Mapper.both_constraints ~area:loose.Mapper.les
      ~delay_ns:(loose.Mapper.delay_ns *. 3.0)
      p ~arch
  in
  check Alcotest.bool "meets area" true (plan.Mapper.les <= loose.Mapper.les);
  check Alcotest.bool "meets delay" true
    (plan.Mapper.delay_ns <= loose.Mapper.delay_ns *. 3.0)

(* --- degenerate designs --- *)

(* A design with no combinational logic at all (one register copying an
   input): the flow must still produce a sane empty-plane mapping. *)
let test_mapper_pure_copy_design () =
  let d = Rtl.create "copyonly" in
  let x = Rtl.add_input d "x" 4 in
  let r = Rtl.add_register d ~name:"r" ~width:4 () in
  Rtl.connect_register d r ~d:x;
  Rtl.mark_output d "q" r;
  let p = Mapper.prepare d in
  check Alcotest.int "one (empty) plane" 1 p.Mapper.num_planes;
  let plan = Mapper.plan_level p ~arch:Arch.unbounded_k ~level:1 in
  check Alcotest.int "one stage" 1 plan.Mapper.stages;
  check Alcotest.bool "at least one LE for the state" true (plan.Mapper.les >= 1)

let test_mapper_single_lut_design () =
  let d = Rtl.create "tiny" in
  let a = Rtl.add_input d "a" 1 in
  let b = Rtl.add_input d "b" 1 in
  let y = Rtl.add_op d ~width:1 (Rtl.Bit_and (a, b)) in
  Rtl.mark_output d "y" y;
  let p = Mapper.prepare d in
  check Alcotest.int "one LUT" 1 p.Mapper.total_luts;
  let plan = Mapper.at_min p ~arch:Arch.unbounded_k in
  check Alcotest.int "one LE" 1 plan.Mapper.les

let test_fold_edge_cases () =
  Alcotest.check_raises "no LEs" (Invalid_argument "Fold.min_stages: no LEs")
    (fun () -> ignore (Fold.min_stages ~lut_max:10 ~available_le:0));
  Alcotest.check_raises "stages < 1"
    (Invalid_argument "Fold.level_for_stages: stages < 1") (fun () ->
      ignore (Fold.level_for_stages ~depth_max:5 ~stages:0));
  check Alcotest.int "depth 0 still level 1" 1
    (Fold.level_for_stages ~depth_max:0 ~stages:3)

let test_arch_validate_errors () =
  let code_of a =
    match Arch.validate_result a with
    | Ok () -> Alcotest.fail "expected a diagnostic"
    | Error d -> d.Nanomap_util.Diag.code
  in
  check Alcotest.string "bad lut_inputs" "bad-lut-inputs"
    (code_of { Arch.default with Arch.lut_inputs = 0 });
  check Alcotest.string "pins below K" "bad-smb-input-pins"
    (code_of { Arch.default with Arch.smb_input_pins = 2 });
  (match
     Arch.validate { Arch.default with Arch.lut_inputs = 0 }
   with
  | () -> Alcotest.fail "validate accepted a bad arch"
  | exception Nanomap_util.Diag.Fail d ->
    check Alcotest.string "validate raises Diag.Fail" "arch"
      d.Nanomap_util.Diag.stage)

(* two independent FSMs: separate cyclic weak components, both plane 1 *)
let test_levelize_two_fsms () =
  let d = Rtl.create "twofsm" in
  let mk name =
    let s = Rtl.add_register d ~name ~width:2 () in
    let one = Rtl.add_const d ~width:2 1 in
    Rtl.connect_register d s ~d:(Rtl.add_op d ~width:2 (Rtl.Add (s, one)));
    s
  in
  let a = mk "fsm_a" and b = mk "fsm_b" in
  Rtl.mark_output d "a" a;
  Rtl.mark_output d "b" b;
  let lv = Nanomap_rtl.Levelize.levelize d in
  check Alcotest.int "one plane" 1 (Nanomap_rtl.Levelize.num_planes lv);
  List.iter
    (fun (_, level) -> check Alcotest.int "level 1" 1 level)
    lv.Nanomap_rtl.Levelize.register_level

(* --- Arch --- *)

let test_arch_model () =
  Arch.validate Arch.default;
  check Alcotest.int "LEs per SMB" 16 (Arch.les_per_smb Arch.default);
  check Alcotest.int "SMBs for 17 LEs" 2 (Arch.les_to_smbs Arch.default 17);
  let d1 = Arch.folding_cycle_ns Arch.default ~level:1 in
  let d2 = Arch.folding_cycle_ns Arch.default ~level:2 in
  check Alcotest.bool "cycle grows with level" true (d2 > d1);
  (* no-folding pays no reconfiguration *)
  let nf = Arch.plane_cycle_ns Arch.default ~level:10 ~stages:1 in
  let f2 = Arch.plane_cycle_ns Arch.default ~level:5 ~stages:2 in
  check Alcotest.bool "folding adds reconf overhead" true (f2 > nf)

let () =
  Alcotest.run "core"
    [ ( "fold",
        [ Alcotest.test_case "motivational example" `Quick test_fold_motivational_example;
          Alcotest.test_case "min level (Eq.3)" `Quick test_fold_min_level;
          Alcotest.test_case "pipelined (Eq.4)" `Quick test_fold_pipelined ] );
      ( "sched",
        [ Alcotest.test_case "frames Fig.3" `Quick test_frames_fig4;
          Alcotest.test_case "storage lifetime Fig.4" `Quick test_storage_lifetime_fig4;
          Alcotest.test_case "LUT DG conservation" `Quick test_lut_dg_conservation;
          Alcotest.test_case "storage DG bounds" `Quick test_storage_dg_bounds;
          Alcotest.test_case "infeasible stages" `Quick test_infeasible_stages ] );
      ( "fds",
        [ Alcotest.test_case "valid and balanced" `Quick test_fds_valid_and_balanced;
          Alcotest.test_case "asap/alap valid" `Quick test_asap_alap_are_valid;
          Alcotest.test_case "balances parallel work" `Quick test_fds_balances_parallel_work ] );
      ( "mapper",
        [ Alcotest.test_case "no folding" `Quick test_mapper_no_folding;
          Alcotest.test_case "folding reduces LEs" `Quick test_mapper_folding_reduces_les;
          Alcotest.test_case "delay_min area" `Quick test_mapper_delay_min_respects_area;
          Alcotest.test_case "at_min product" `Quick test_mapper_at_min_best_product;
          Alcotest.test_case "infeasible area" `Quick test_mapper_infeasible_area;
          Alcotest.test_case "k limits levels" `Quick test_mapper_k_limits_levels;
          Alcotest.test_case "area_min" `Quick test_mapper_area_min;
          Alcotest.test_case "both constraints" `Quick test_mapper_both_constraints ] );
      ( "edge-cases",
        [ Alcotest.test_case "pure copy design" `Quick test_mapper_pure_copy_design;
          Alcotest.test_case "single LUT design" `Quick test_mapper_single_lut_design;
          Alcotest.test_case "fold edges" `Quick test_fold_edge_cases;
          Alcotest.test_case "arch validation" `Quick test_arch_validate_errors;
          Alcotest.test_case "two FSMs one plane" `Quick test_levelize_two_fsms ] );
      ("arch", [ Alcotest.test_case "model" `Quick test_arch_model ]) ]
