(* The VHDL designs shipped in designs/ must parse, elaborate, behave
   correctly under reference simulation, and survive the full flow with the
   fabric emulator agreeing cycle-for-cycle. *)

module Vhdl = Nanomap_vhdl.Vhdl
module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch
module Cluster = Nanomap_cluster.Cluster
module Emulator = Nanomap_emu.Emulator
module Rng = Nanomap_util.Rng
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Bitstream = Nanomap_bitstream.Bitstream
module Diag = Nanomap_util.Diag
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Decompose = Nanomap_techmap.Decompose
module Aig_map = Nanomap_techmap.Aig_map
module Lut_network = Nanomap_techmap.Lut_network

let check = Alcotest.check

(* Tests run somewhere under _build; walk up until the source designs/
   directory appears. *)
let design_path name =
  let rec hunt dir depth =
    let candidate = Filename.concat (Filename.concat dir "designs") name in
    if Sys.file_exists candidate then candidate
    else if depth > 8 then failwith ("designs/" ^ name ^ " not found")
    else hunt (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  hunt (Sys.getcwd ()) 0

let load name = Vhdl.design_of_file (design_path name)

(* --- behavioural reference checks --- *)

let test_mac_behaviour () =
  let d = load "mac.vhd" in
  let sim = Rtl.sim_create d in
  ignore (Rtl.sim_cycle sim [ ("a", 7); ("b", 6); ("clear", 0) ]);
  let outs = Rtl.sim_cycle sim [ ("a", 2); ("b", 9); ("clear", 0) ] in
  check Alcotest.int "7*6 + 2*9" 60 (List.assoc "acc" outs)

let test_fir4_behaviour () =
  let d = load "fir4.vhd" in
  let sim = Rtl.sim_create d in
  (* impulse response must read out the coefficients 3,11,11,3 *)
  ignore (Rtl.sim_cycle sim [ ("x", 1) ]);
  let y1 = List.assoc "y" (Rtl.sim_cycle sim [ ("x", 0) ]) in
  let y2 = List.assoc "y" (Rtl.sim_cycle sim [ ("x", 0) ]) in
  let y3 = List.assoc "y" (Rtl.sim_cycle sim [ ("x", 0) ]) in
  let y4 = List.assoc "y" (Rtl.sim_cycle sim [ ("x", 0) ]) in
  let y5 = List.assoc "y" (Rtl.sim_cycle sim [ ("x", 0) ]) in
  check (Alcotest.list Alcotest.int) "impulse response" [ 3; 11; 11; 3; 0 ]
    [ y1; y2; y3; y4; y5 ]

let test_counter_behaviour () =
  let d = load "counter.vhd" in
  let sim = Rtl.sim_create d in
  ignore (Rtl.sim_cycle sim [ ("rst", 1); ("en", 0); ("step", 3) ]);
  let q = List.assoc "q" (Rtl.sim_cycle sim [ ("rst", 0); ("en", 1); ("step", 3) ]) in
  check Alcotest.int "after reset" 0 q;
  let q = List.assoc "q" (Rtl.sim_cycle sim [ ("rst", 0); ("en", 1); ("step", 5) ]) in
  check Alcotest.int "counted 3" 3 q;
  let q = List.assoc "q" (Rtl.sim_cycle sim [ ("rst", 0); ("en", 0); ("step", 5) ]) in
  check Alcotest.int "counted 8" 8 q;
  let q = List.assoc "q" (Rtl.sim_cycle sim [ ("rst", 0); ("en", 1); ("step", 1) ]) in
  check Alcotest.int "held while disabled" 8 q

let test_pipeline3_planes () =
  let d = load "pipeline3.vhd" in
  let lv = Levelize.levelize d in
  check Alcotest.int "three planes" 3 (Levelize.num_planes lv)

let test_biquad_single_plane () =
  let d = load "biquad.vhd" in
  let lv = Levelize.levelize d in
  check Alcotest.int "one plane (feedback)" 1 (Levelize.num_planes lv)

(* --- through the full flow with fabric emulation --- *)

(* [level] 0 means the no-folding baseline. *)
let lockstep ?(cycles = 60) name level =
  let design = load name in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare design in
  let plan =
    if level = 0 then Mapper.no_folding p ~arch
    else Mapper.plan_level p ~arch ~level
  in
  let cl = Cluster.pack plan ~arch in
  Cluster.validate cl plan;
  let emu = Emulator.create design plan cl in
  let sim = Rtl.sim_create design in
  let rng = Rng.create 42 in
  for cycle = 1 to cycles do
    let stimulus =
      List.map
        (fun (s : Rtl.signal) -> (s.Rtl.name, Rng.int rng (1 lsl min s.Rtl.width 12)))
        (Rtl.inputs design)
    in
    let expected = Rtl.sim_cycle sim stimulus in
    let got = Emulator.macro_cycle emu stimulus in
    List.iter
      (fun (n, v) ->
        check Alcotest.int (Printf.sprintf "%s cycle %d output %s" name cycle n) v
          (Option.value ~default:(-1) (List.assoc_opt n got)))
      expected
  done

let all_designs =
  [ "mac.vhd"; "fir4.vhd"; "biquad.vhd"; "pipeline3.vhd"; "counter.vhd" ]

(* Every shipped design, 100 macro cycles, at folding levels 1 and 2 and
   the no-folding baseline: the emulator must track the RTL simulator
   exactly in all three execution regimes. *)
let differential_cases =
  List.concat_map
    (fun name ->
      List.map
        (fun level ->
          let label =
            Printf.sprintf "%s level %s" name
              (if level = 0 then "none" else string_of_int level)
          in
          Alcotest.test_case label `Quick (fun () ->
              lockstep ~cycles:100 name level))
        [ 1; 2; 0 ])
    all_designs

(* The full physical flow must emit a bitstream whose
   encode -> parse -> encode round-trip is byte-identical, and which the
   Full-level checker accepts. *)
let test_bitstream_roundtrip name () =
  let design = load name in
  let arch = Arch.unbounded_k in
  let options =
    { Flow.default_options with Flow.check_level = Check.Off }
  in
  match Flow.run_result ~options ~arch design with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok report ->
    (match report.Flow.bitstream with
    | None -> Alcotest.fail "physical flow produced no bitstream"
    | Some bs ->
      let num_smbs, lut_inputs, cfgs = Bitstream.parse_full bs.Bitstream.bytes in
      let re = Bitstream.encode_configs ~num_smbs ~lut_inputs cfgs in
      check Alcotest.bool
        (Printf.sprintf "%s bitstream byte-identical round-trip" name)
        true
        (Bytes.equal re bs.Bitstream.bytes);
      (match Check.bitstream Check.Full ~arch bs with
      | Ok () -> ()
      | Error d -> Alcotest.fail (Diag.to_string d)))

let roundtrip_cases =
  List.map
    (fun name ->
      Alcotest.test_case name `Quick (test_bitstream_roundtrip name))
    all_designs

(* --- scale: generated thousand-LUT netlists through the AIG mapper --- *)

let tag_netlist nl =
  let input_origins =
    List.mapi (fun i (_, gid) -> (gid, Lut_network.Pi_bit (i, 0))) (Gate_netlist.inputs nl)
  in
  let output_targets =
    List.map (fun (name, gid) -> (Lut_network.Po_target name, gid)) (Gate_netlist.outputs nl)
  in
  { Decompose.gates = nl;
    tags = Array.make (Gate_netlist.size nl) (-1);
    input_origins;
    output_targets }

(* Random-vector equivalence for netlists far too wide for exhaustion. *)
let spot_check_equivalent ?(vectors = 24) tg lut =
  let nl = tg.Decompose.gates in
  let ins = Gate_netlist.inputs nl in
  let rng = Rng.create 5 in
  for v = 1 to vectors do
    let assignment = Hashtbl.create 64 in
    List.iter
      (fun (_, gid) ->
        Hashtbl.replace assignment (List.assoc gid tg.Decompose.input_origins)
          (Rng.bool rng))
      ins;
    let sim_inputs =
      List.map
        (fun (_, gid) ->
          Hashtbl.find assignment (List.assoc gid tg.Decompose.input_origins))
        ins
    in
    let gate_values = Gate_netlist.simulate nl (Array.of_list sim_inputs) in
    let lut_values =
      Lut_network.eval lut (fun origin ->
          match origin with
          | Lut_network.Const_bit b -> b
          | _ -> Option.value (Hashtbl.find_opt assignment origin) ~default:false)
    in
    List.iter
      (fun (target, gid) ->
        let node = List.assoc target (Lut_network.outputs lut) in
        if lut_values.(node) <> gate_values.(gid) then
          Alcotest.failf "vector %d: mismatch at output node %d" v node)
      tg.Decompose.output_targets
  done

let big_random_netlist () =
  Gen.random_layered (Rng.create 1009) ~num_inputs:64 ~layers:24 ~layer_width:128
    ~num_outputs:64

let test_scale_thousand_luts () =
  let tg = tag_netlist (big_random_netlist ()) in
  let lut, stats = Aig_map.map_stats ~k:4 tg in
  Lut_network.validate lut;
  if Lut_network.num_luts lut < 1000 then
    Alcotest.failf "expected a >= 1000-LUT subject, mapped to %d LUTs"
      (Lut_network.num_luts lut);
  check Alcotest.bool "cuts were enumerated" true (stats.Aig_map.cuts_enumerated > 0);
  spot_check_equivalent tg lut

let test_scale_wallace () =
  let nl = Gate_netlist.create () in
  let a = Gen.input_bus nl "a" 14 and b = Gen.input_bus nl "b" 14 in
  Gen.mark_output_bus nl "p" (Gen.wallace_multiplier nl a b);
  let tg = tag_netlist nl in
  let lut = Aig_map.map ~k:4 ~effort:2 tg in
  Lut_network.validate lut;
  spot_check_equivalent tg lut

let test_scale_deterministic () =
  let fp () =
    Lut_network.fingerprint (Aig_map.map ~k:4 (tag_netlist (big_random_netlist ())))
  in
  check Alcotest.string "scale mapping reproducible" (fp ()) (fp ())

let () =
  Alcotest.run "designs"
    [ ( "behaviour",
        [ Alcotest.test_case "mac" `Quick test_mac_behaviour;
          Alcotest.test_case "fir4 impulse" `Quick test_fir4_behaviour;
          Alcotest.test_case "counter" `Quick test_counter_behaviour;
          Alcotest.test_case "pipeline3 planes" `Quick test_pipeline3_planes;
          Alcotest.test_case "biquad plane" `Quick test_biquad_single_plane ] );
      ("differential", differential_cases);
      ("bitstream-roundtrip", roundtrip_cases);
      ( "scale",
        [ Alcotest.test_case "thousand-LUT random ladder" `Quick
            test_scale_thousand_luts;
          Alcotest.test_case "wallace 14x14" `Quick test_scale_wallace;
          Alcotest.test_case "deterministic at scale" `Quick
            test_scale_deterministic ] ) ]
