(* Design-space explorer tests (PR 10): the channel-width binary search
   (monotonicity, agreement with a linear scan, the typed
   unroutable-at-max failure), worker-count invariance of the sweep
   (j1 vs j4 fingerprints byte-identical), Pareto-dominance consistency,
   and the golden smoke-grid report (regen with `make regen-golden`). *)

module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Circuits = Nanomap_circuits.Circuits
module Explore = Nanomap_explore.Explore
module Pool = Nanomap_util.Pool
module Diag = Nanomap_util.Diag

let check = Alcotest.check

(* A placed fixture at an explorer architecture point, bypassing the full
   flow: prepare -> plan -> pack -> place, exactly what measure_point
   feeds the width search. *)
let fixture ?(seed = 7) ?(level = 0) ?k ?les_per_mb benchmark =
  let b = benchmark () in
  let arch =
    match (k, les_per_mb) with
    | None, None -> Explore.arch_point ()
    | _ ->
      Explore.arch_point ?k ?les_per_mb ()
  in
  let p = Mapper.prepare b.Circuits.design in
  let plan =
    if level = 0 then Mapper.no_folding p ~arch
    else Mapper.plan_level p ~arch ~level
  in
  let cl = Cluster.pack plan ~arch in
  let place = Place.place ~seed ~effort:`Fast cl in
  (cl, plan, place)

(* --------------------------------------------- binary-width search *)

(* The predicate the binary search assumes monotone really is monotone on
   this fabric: once routable at some width, routable at every larger
   width (same placement, same seed). *)
let test_monotone () =
  let cl, plan, place = fixture Circuits.ex1_small in
  let routable =
    List.map (Explore.routable_at ~cluster:cl ~plan place) [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16 ]
  in
  let rec ok seen_true = function
    | [] -> true
    | r :: rest ->
      if seen_true && not r then false else ok (seen_true || r) rest
  in
  check Alcotest.bool "routability is monotone in width" true
    (ok false routable);
  check Alcotest.bool "routable at some width" true
    (List.exists (fun r -> r) routable)

(* The binary search returns exactly the linear scan's first success. *)
let test_exact_minimum () =
  List.iter
    (fun (bench, level) ->
      let cl, plan, place = fixture ~level bench in
      match Explore.min_channel_width ~cluster:cl ~plan place with
      | Error d -> Alcotest.fail ("unexpectedly unroutable: " ^ d.Diag.code)
      | Ok w ->
        let rec first i =
          if i > 64 then Alcotest.fail "linear scan found no width"
          else if Explore.routable_at ~cluster:cl ~plan place i then i
          else first (i + 1)
        in
        let linear = first 1 in
        check Alcotest.int "binary search = linear scan" linear w;
        if w > 1 then
          check Alcotest.bool "w-1 is unroutable" false
            (Explore.routable_at ~cluster:cl ~plan place (w - 1)))
    [ (Circuits.ex1_small, 0); (Circuits.ex1_small, 1);
      ((fun () -> Circuits.ex1 ()), 1) ]

(* Capping the search below the true minimum yields the typed failure. *)
let test_unroutable_at_max () =
  let cl, plan, place = fixture Circuits.ex1_small in
  match Explore.min_channel_width ~cluster:cl ~plan place with
  | Error d -> Alcotest.fail ("fixture unroutable: " ^ d.Diag.code)
  | Ok w when w <= 1 -> Alcotest.fail "fixture routes at width 1; cap test moot"
  | Ok w -> (
    match Explore.min_channel_width ~max_width:(w - 1) ~cluster:cl ~plan place with
    | Ok w' ->
      Alcotest.fail
        (Printf.sprintf "search capped below minimum returned %d" w')
    | Error d ->
      check Alcotest.string "stage" "explore" d.Diag.stage;
      check Alcotest.string "code" "unroutable-at-max" d.Diag.code;
      check Alcotest.bool "context names the cap" true
        (List.mem ("max_width", string_of_int (w - 1)) d.Diag.context))

(* ------------------------------------------------------- the sweep *)

let designs = [ "ex1_small"; "crc8" ]

(* Computed once, shared by the golden / pareto / fingerprint tests. *)
let smoke_results =
  lazy (Explore.run ~designs Explore.smoke_grid)

let test_j1_vs_j4 () =
  let serial = Lazy.force smoke_results in
  let parallel =
    Pool.with_pool ~jobs:4 (fun p ->
        Explore.run ~pool:p ~designs Explore.smoke_grid)
  in
  check Alcotest.string "fingerprints byte-identical"
    (Explore.fingerprint ~designs serial)
    (Explore.fingerprint ~designs parallel);
  check Alcotest.string "reports byte-identical"
    (Explore.report_ascii ~designs serial)
    (Explore.report_ascii ~designs parallel)

let test_pareto_consistency () =
  let results = Lazy.force smoke_results in
  let key (r : Explore.point_result) =
    match r.Explore.status with
    | Explore.Feasible w -> Some (r.Explore.total_area, r.Explore.mean_delay, w)
    | _ -> None
  in
  let dominates (a1, d1, w1) (a2, d2, w2) =
    a1 <= a2 && d1 <= d2 && w1 <= w2 && (a1 < a2 || d1 < d2 || w1 < w2)
  in
  let frontier = List.filter (fun r -> r.Explore.pareto) results in
  check Alcotest.bool "frontier non-empty" true (frontier <> []);
  (* no frontier point dominates another frontier point *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            match (key a, key b) with
            | Some ka, Some kb when dominates ka kb ->
              Alcotest.fail "one frontier point dominates another"
            | _ -> ())
        frontier)
    frontier;
  (* every feasible point off the frontier is dominated by a frontier point *)
  List.iter
    (fun r ->
      match key r with
      | Some kr when not r.Explore.pareto ->
        if
          not
            (List.exists
               (fun f ->
                 match key f with
                 | Some kf -> dominates kf kr
                 | None -> false)
               frontier)
        then Alcotest.fail "off-frontier feasible point not dominated"
      | _ -> ())
    results;
  (* infeasible / unroutable points never join the frontier *)
  List.iter
    (fun r ->
      match r.Explore.status with
      | Explore.Feasible _ -> ()
      | _ ->
        check Alcotest.bool "non-feasible point off frontier" false
          r.Explore.pareto)
    results

(* ---------------------------------------------------- golden report *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_golden () =
  let got = Explore.report_ascii ~designs (Lazy.force smoke_results) in
  match Sys.getenv_opt "NANOMAP_REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir "explore_smoke.txt" in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Printf.printf "regenerated %s\n%!" path
  | None ->
    let path = Filename.concat "golden" "explore_smoke.txt" in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf "missing golden file %s — run `make regen-golden`" path);
    let want = read_file path in
    if got <> want then
      Alcotest.fail
        (Printf.sprintf
           "explore smoke report differs from golden:\n%s\nrun `make \
            regen-golden` if the change is intentional"
           got)

(* Enumeration is a fixed-order cartesian product of validated points. *)
let test_enumerate () =
  let points = Explore.enumerate Explore.smoke_grid in
  check Alcotest.int "smoke grid size" 8 (List.length points);
  List.iter
    (fun (pt : Explore.point) ->
      match Arch.validate_result pt.Explore.arch with
      | Ok () -> ()
      | Error d -> Alcotest.fail ("enumerated invalid point: " ^ d.Diag.code))
    points;
  (* K outermost: the first half of the list is all K=3 *)
  let ks = List.map (fun (pt : Explore.point) -> pt.Explore.arch.Arch.lut_inputs) points in
  check Alcotest.(list int) "K outermost, folding innermost"
    [ 3; 3; 3; 3; 4; 4; 4; 4 ] ks

let () =
  Alcotest.run "explore"
    [ ( "width-search",
        [ Alcotest.test_case "monotone" `Quick test_monotone;
          Alcotest.test_case "binary = linear" `Quick test_exact_minimum;
          Alcotest.test_case "unroutable-at-max" `Quick test_unroutable_at_max ] );
      ( "sweep",
        [ Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "j1 vs j4" `Slow test_j1_vs_j4;
          Alcotest.test_case "pareto consistency" `Slow test_pareto_consistency;
          Alcotest.test_case "golden smoke report" `Slow test_golden ] ) ]
