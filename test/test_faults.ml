(* Fault-injection test-bench: every injector in Nanomap_flow.Fault must be
   caught by exactly the checker (and diagnostic code) it claims to target,
   and a fabric with a defect map must still produce a legal mapping that
   routes around the bad resources. *)

module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Diag = Nanomap_util.Diag
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Fault = Nanomap_flow.Fault
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Cluster = Nanomap_cluster.Cluster
module Circuits = Nanomap_circuits.Circuits

let check = Alcotest.check
let arch = Arch.unbounded_k

(* One clean physical run shared by all injection tests. Checks stay off so
   the baseline artifacts reach the tests unmodified. *)
let baseline =
  lazy
    (let options = { Flow.default_options with Flow.check_level = Check.Off } in
     let design = (Circuits.ex1_small ()).Circuits.design in
     Flow.run ~options ~arch design)

let placement r = Option.get r.Flow.placement
let routing r = Option.get r.Flow.routing
let bitstream r = Option.get r.Flow.bitstream

(* Assert a checker result is the intended diagnostic, no other. *)
let expect_diag label ~stage ~code = function
  | Ok () -> Alcotest.failf "%s: checker accepted the faulted artifact" label
  | Error (d : Diag.t) ->
    check Alcotest.string (label ^ " stage") stage d.Diag.stage;
    check Alcotest.string (label ^ " code") code d.Diag.code

let test_drop_net () =
  let r = Lazy.force baseline in
  let faulted = Fault.drop_net (routing r) in
  check Alcotest.int "one net fewer"
    (List.length (routing r).Router.routed - 1)
    (List.length faulted.Router.routed);
  expect_diag "drop_net" ~stage:"route" ~code:"net-missing"
    (Check.route Check.Full r.Flow.cluster faulted);
  (* completeness is a Full-level check: Fast must not pay for it *)
  (match Check.route Check.Fast r.Flow.cluster faulted with
   | Ok () -> ()
   | Error d -> Alcotest.failf "fast level ran completeness: %s" (Diag.to_string d))

let test_overfill_cluster () =
  let r = Lazy.force baseline in
  let faulted = Fault.overfill_cluster r.Flow.plan r.Flow.cluster in
  check Alcotest.bool "fault applied" true (faulted != r.Flow.cluster);
  expect_diag "overfill" ~stage:"cluster" ~code:"le-double-booked"
    (Check.cluster Check.Fast r.Flow.plan faulted)

let test_double_book_slot () =
  let r = Lazy.force baseline in
  let faulted = Fault.double_book_slot (placement r) in
  expect_diag "double-book" ~stage:"place" ~code:"site-conflict"
    (Check.place Check.Fast r.Flow.cluster faulted)

let test_defective_le () =
  let r = Lazy.force baseline in
  let defects = Fault.mark_used_le_defective r.Flow.cluster (placement r) in
  check Alcotest.int "one defective LE" 1 (Defect.count defects);
  expect_diag "defective-le" ~stage:"place" ~code:"defective-le"
    (Check.place Check.Fast ~defects r.Flow.cluster (placement r));
  (* the clean placement against an empty defect map still passes *)
  (match Check.place Check.Fast r.Flow.cluster (placement r) with
   | Ok () -> ()
   | Error d -> Alcotest.failf "clean placement rejected: %s" (Diag.to_string d))

let test_defective_track () =
  let r = Lazy.force baseline in
  let rt = routing r in
  let nd = Fault.mark_used_track_defective rt in
  check Alcotest.bool "marked a wire node" true (nd >= 0);
  Fun.protect
    ~finally:(fun () -> rt.Router.graph.Rr_graph.defective.(nd) <- false)
    (fun () ->
      expect_diag "defective-track" ~stage:"route" ~code:"defective-track"
        (Check.route Check.Fast r.Flow.cluster rt))

let test_corrupt_bitstream () =
  let r = Lazy.force baseline in
  let faulted = Fault.corrupt_bitstream (bitstream r) in
  expect_diag "corrupt" ~stage:"bitstream" ~code:"corrupt"
    (Check.bitstream Check.Full ~arch faulted);
  (* parse round-trip is a Full-level check *)
  (match Check.bitstream Check.Fast ~arch faulted with
   | Ok () -> ()
   | Error d -> Alcotest.failf "fast level parsed the bitmap: %s" (Diag.to_string d))

(* --- defect-map parsing: malformed input must surface as a typed
   diagnostic, never a silently-wrong map --- *)

let expect_parse_fail label ~code s =
  match Defect.of_string ?arch:None s with
  | _ -> Alcotest.failf "%s: malformed map accepted" label
  | exception Diag.Fail d ->
    check Alcotest.string (label ^ " stage") "defects" d.Diag.stage;
    check Alcotest.string (label ^ " code") code d.Diag.code

let test_defect_map_duplicates () =
  expect_parse_fail "duplicate le" ~code:"duplicate"
    "le 0 0 0 1\nle 1 1 2 2\nle 0 0 0 1\n";
  expect_parse_fail "duplicate track" ~code:"duplicate"
    "track len4 17\ntrack len1 3\ntrack len4 17\n";
  (* the diagnostic names both offending lines *)
  (match Defect.of_string "le 0 0 0 1\n\nle 0 0 0 1\n" with
   | _ -> Alcotest.fail "duplicate accepted"
   | exception Diag.Fail d ->
     check Alcotest.(option string) "line" (Some "3")
       (List.assoc_opt "line" d.Diag.context);
     check Alcotest.(option string) "first_line" (Some "1")
       (List.assoc_opt "first_line" d.Diag.context));
  (* the same resource on different sites is not a duplicate *)
  let m = Defect.of_string "le 0 0 0 1\nle 0 1 0 1\ntrack len4 1\ntrack len1 1\n" in
  check Alcotest.int "distinct entries kept" 4 (Defect.count m)

let test_defect_map_out_of_range () =
  let a = Arch.default in
  let bad_mb = Printf.sprintf "le 0 0 %d 0\n" a.Arch.mbs_per_smb in
  let bad_le = Printf.sprintf "le 0 0 0 %d\n" a.Arch.les_per_mb in
  let expect label s =
    match Defect.of_string ~arch:a s with
    | _ -> Alcotest.failf "%s: out-of-range index accepted" label
    | exception Diag.Fail d ->
      check Alcotest.string (label ^ " stage") "defects" d.Diag.stage;
      check Alcotest.string (label ^ " code") "out-of-range" d.Diag.code
  in
  expect "mb" bad_mb;
  expect "le" bad_le;
  (* without an architecture the same lines parse: the indices are only
     checkable against a concrete SMB geometry *)
  check Alcotest.int "unchecked parse" 2 (Defect.count (Defect.of_string (bad_mb ^ bad_le)));
  (* grid coordinates and track ordinals are die-relative: deliberately
     not range-checked even with an architecture *)
  check Alcotest.int "off-grid ok" 2
    (Defect.count (Defect.of_string ~arch:a "le 999 999 0 0\ntrack global 9999\n"))

let test_defect_map_valid_with_comments () =
  let m =
    Defect.of_string ~arch:Arch.default
      "# die 0317\n\nle 2 1 0 3   # bad LE\n\ttrack len4 17\r\n"
  in
  check Alcotest.int "entries" 2 (Defect.count m);
  check Alcotest.bool "roundtrip" true
    (Defect.of_string (Defect.to_string m) = m)

(* A clean report passes every checker the injectors just defeated. *)
let test_clean_report_validates () =
  let r = Lazy.force baseline in
  match Flow.validate_report ~level:Check.Full r with
  | Ok () -> ()
  | Error d -> Alcotest.failf "clean report rejected: %s" (Diag.to_string d)

(* End-to-end graceful degradation: 5% of the fabric's LEs are defective;
   the flow must still complete with a placement that avoids every bad LE
   and a routing that is legal on the thinned graph. *)
let test_defective_fabric_end_to_end () =
  let base = Lazy.force baseline in
  let width, height = Place.grid_dims base.Flow.cluster in
  let defects = Defect.random_les ~seed:7 ~fraction:0.05 ~width ~height arch in
  check Alcotest.bool "some defects drawn" true (Defect.count defects > 0);
  let options =
    { Flow.default_options with
      Flow.check_level = Check.Full;
      defects }
  in
  let design = (Circuits.ex1_small ()).Circuits.design in
  match Flow.run_result ~options ~arch design with
  | Error d -> Alcotest.failf "defective fabric failed: %s" (Diag.to_string d)
  | Ok r ->
    let pl = placement r in
    (* no used LE sits on a defective site *)
    (match Check.place Check.Full ~defects r.Flow.cluster pl with
     | Ok () -> ()
     | Error d -> Alcotest.failf "placement on defect: %s" (Diag.to_string d));
    let rt = routing r in
    check Alcotest.bool "routing legal" true rt.Router.success;
    Router.validate rt;
    (* the independent oracle agrees end to end *)
    (match Flow.validate_report ~defects r with
     | Ok () -> ()
     | Error d -> Alcotest.failf "report oracle: %s" (Diag.to_string d))

(* Defective tracks: knock out a handful of interconnect wires and make
   sure the router worked around them (none appear in any routed tree). *)
let test_defective_tracks_end_to_end () =
  let defects =
    { Defect.none with
      Defect.tracks =
        [ ("len1", 0); ("len1", 3); ("len4", 1); ("direct", 2); ("global", 0) ] }
  in
  let options = { Flow.default_options with Flow.defects } in
  let design = (Circuits.ex1_small ()).Circuits.design in
  match Flow.run_result ~options ~arch design with
  | Error d -> Alcotest.failf "defective tracks failed: %s" (Diag.to_string d)
  | Ok r ->
    let rt = routing r in
    let g = rt.Router.graph in
    let hit = ref 0 in
    Array.iteri (fun _ d -> if d then incr hit) g.Rr_graph.defective;
    check Alcotest.bool "graph carries defect marks" true (!hit > 0);
    List.iter
      (fun (rn : Router.routed_net) ->
        List.iter
          (fun nd ->
            if g.Rr_graph.defective.(nd) then
              Alcotest.failf "net routed through defective node %d" nd)
          rn.Router.tree)
      rt.Router.routed

let () =
  Alcotest.run "faults"
    [ ( "injectors",
        [ Alcotest.test_case "drop net" `Quick test_drop_net;
          Alcotest.test_case "overfill cluster" `Quick test_overfill_cluster;
          Alcotest.test_case "double-book slot" `Quick test_double_book_slot;
          Alcotest.test_case "defective LE" `Quick test_defective_le;
          Alcotest.test_case "defective track" `Quick test_defective_track;
          Alcotest.test_case "corrupt bitstream" `Quick test_corrupt_bitstream ] );
      ( "defect-map",
        [ Alcotest.test_case "duplicates rejected" `Quick test_defect_map_duplicates;
          Alcotest.test_case "out-of-range indices" `Quick
            test_defect_map_out_of_range;
          Alcotest.test_case "comments and round-trip" `Quick
            test_defect_map_valid_with_comments ] );
      ( "degradation",
        [ Alcotest.test_case "clean report validates" `Quick
            test_clean_report_validates;
          Alcotest.test_case "5% defective LEs" `Quick
            test_defective_fabric_end_to_end;
          Alcotest.test_case "defective tracks" `Quick
            test_defective_tracks_end_to_end ] ) ]
