module Truth_table = Nanomap_logic.Truth_table
module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Rng = Nanomap_util.Rng

let check = Alcotest.check

(* --- truth tables --- *)

let test_tt_const () =
  let t0 = Truth_table.const ~arity:3 false in
  let t1 = Truth_table.const ~arity:3 true in
  check Alcotest.bool "const0" false (Truth_table.eval t0 [| true; false; true |]);
  check Alcotest.bool "const1" true (Truth_table.eval t1 [| false; false; false |]);
  check Alcotest.int64 "const1 bits masked" 0xFFL (Truth_table.bits t1)

let test_tt_var () =
  for arity = 1 to Truth_table.max_arity do
    for i = 0 to arity - 1 do
      let v = Truth_table.var ~arity i in
      for idx = 0 to (1 lsl arity) - 1 do
        let inputs = Array.init arity (fun j -> idx land (1 lsl j) <> 0) in
        check Alcotest.bool "projection" inputs.(i) (Truth_table.eval v inputs)
      done
    done
  done

let test_tt_ops () =
  let a = Truth_table.var ~arity:2 0 and b = Truth_table.var ~arity:2 1 in
  let f = Truth_table.logand a b in
  check Alcotest.int64 "and" 0x8L (Truth_table.bits f);
  let g = Truth_table.logor a b in
  check Alcotest.int64 "or" 0xEL (Truth_table.bits g);
  let h = Truth_table.logxor a b in
  check Alcotest.int64 "xor" 0x6L (Truth_table.bits h);
  let n = Truth_table.lognot a in
  check Alcotest.int64 "not" 0x5L (Truth_table.bits n)

let test_tt_of_fun () =
  let maj =
    Truth_table.of_fun ~arity:3 (fun i ->
        (if i.(0) then 1 else 0) + (if i.(1) then 1 else 0) + (if i.(2) then 1 else 0)
        >= 2)
  in
  check Alcotest.bool "majority 110" true (Truth_table.eval maj [| true; true; false |]);
  check Alcotest.bool "majority 100" false (Truth_table.eval maj [| true; false; false |])

let test_tt_support () =
  let a = Truth_table.var ~arity:4 2 in
  check Alcotest.bool "depends" true (Truth_table.depends_on a 2);
  check Alcotest.bool "independent" false (Truth_table.depends_on a 0);
  check Alcotest.int "support" 1 (Truth_table.support_size a);
  let c = Truth_table.const ~arity:4 true in
  check Alcotest.int "const support" 0 (Truth_table.support_size c)

let test_tt_arity_mismatch () =
  let a = Truth_table.var ~arity:2 0 and b = Truth_table.var ~arity:3 0 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Truth_table: arity mismatch")
    (fun () -> ignore (Truth_table.logand a b))

let tt_roundtrip_prop =
  QCheck.Test.make ~name:"of_bits/bits roundtrip modulo mask" ~count:200
    QCheck.(pair (int_bound Truth_table.max_arity) int64)
    (fun (arity, bits) ->
      let t = Truth_table.of_bits ~arity bits in
      let t' = Truth_table.of_bits ~arity (Truth_table.bits t) in
      Truth_table.equal t t')

let tt_demorgan_prop =
  QCheck.Test.make ~name:"De Morgan on truth tables" ~count:200
    QCheck.(pair int64 int64)
    (fun (x, y) ->
      let a = Truth_table.of_bits ~arity:4 x and b = Truth_table.of_bits ~arity:4 y in
      Truth_table.equal
        (Truth_table.lognot (Truth_table.logand a b))
        (Truth_table.logor (Truth_table.lognot a) (Truth_table.lognot b)))

(* --- edge cases: degenerate arities, cofactor, permute --- *)

let test_tt_arity_zero () =
  let t0 = Truth_table.const ~arity:0 false in
  let t1 = Truth_table.const ~arity:0 true in
  check Alcotest.bool "0-ary false" false (Truth_table.eval t0 [||]);
  check Alcotest.bool "0-ary true" true (Truth_table.eval t1 [||]);
  check Alcotest.int64 "0-ary true bits" 1L (Truth_table.bits t1);
  check Alcotest.int "0-ary support" 0 (Truth_table.support_size t1);
  let t' = Truth_table.of_fun ~arity:0 (fun _ -> true) in
  check Alcotest.bool "of_fun 0-ary" true (Truth_table.equal t1 t')

let test_tt_identity_inverter () =
  let id = Truth_table.var ~arity:1 0 in
  check Alcotest.int64 "identity bits" 2L (Truth_table.bits id);
  let inv = Truth_table.lognot id in
  check Alcotest.int64 "inverter bits" 1L (Truth_table.bits inv);
  check Alcotest.bool "inverter eval" true (Truth_table.eval inv [| false |]);
  check Alcotest.bool "identity eval" true (Truth_table.eval id [| true |]);
  (* double inversion is the identity *)
  check Alcotest.bool "involution" true
    (Truth_table.equal id (Truth_table.lognot inv))

let test_tt_cofactor () =
  let a = Truth_table.var ~arity:3 0 and b = Truth_table.var ~arity:3 1 in
  let f = Truth_table.logand a b in
  (* f|a=0 = 0, f|a=1 = b *)
  check Alcotest.bool "negative cofactor" true
    (Truth_table.equal (Truth_table.cofactor f 0 false)
       (Truth_table.const ~arity:3 false));
  check Alcotest.bool "positive cofactor" true
    (Truth_table.equal (Truth_table.cofactor f 0 true) b);
  (* cofactoring on a variable outside the support changes nothing *)
  check Alcotest.bool "independent cofactor" true
    (Truth_table.equal (Truth_table.cofactor f 2 true) f);
  (* the cofactor never depends on the cofactored variable *)
  check Alcotest.bool "support shrinks" false
    (Truth_table.depends_on (Truth_table.cofactor f 0 true) 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Truth_table.cofactor") (fun () ->
      ignore (Truth_table.cofactor f 3 true))

let test_tt_permute () =
  let a = Truth_table.var ~arity:2 0 and b = Truth_table.var ~arity:2 1 in
  let f = Truth_table.logand a (Truth_table.lognot b) in
  (* swap the two variables *)
  let g = Truth_table.permute f ~arity:2 [| 1; 0 |] in
  check Alcotest.bool "swap" true
    (Truth_table.equal g (Truth_table.logand b (Truth_table.lognot a)));
  (* lift a 1-ary identity into slot 2 of a 3-ary table *)
  let lifted = Truth_table.permute (Truth_table.var ~arity:1 0) ~arity:3 [| 2 |] in
  check Alcotest.bool "lift" true
    (Truth_table.equal lifted (Truth_table.var ~arity:3 2));
  Alcotest.check_raises "bad slot" (Invalid_argument "Truth_table.permute")
    (fun () -> ignore (Truth_table.permute f ~arity:2 [| 0; 2 |]))

let tt_of_fun_eval_prop =
  QCheck.Test.make ~name:"of_fun/eval roundtrip" ~count:200
    QCheck.(pair (int_bound Truth_table.max_arity) int64)
    (fun (arity, bits) ->
      let t = Truth_table.of_bits ~arity bits in
      let t' = Truth_table.of_fun ~arity (Truth_table.eval t) in
      Truth_table.equal t t')

let tt_shannon_prop =
  QCheck.Test.make ~name:"Shannon expansion via cofactors" ~count:200
    QCheck.(triple (int_range 1 Truth_table.max_arity) small_nat int64)
    (fun (arity, i, bits) ->
      let i = i mod arity in
      let f = Truth_table.of_bits ~arity bits in
      let x = Truth_table.var ~arity i in
      let f0 = Truth_table.cofactor f i false and f1 = Truth_table.cofactor f i true in
      Truth_table.equal f
        (Truth_table.logor
           (Truth_table.logand x f1)
           (Truth_table.logand (Truth_table.lognot x) f0)))

let tt_permute_identity_prop =
  QCheck.Test.make ~name:"identity permutation is a no-op" ~count:200
    QCheck.(pair (int_bound Truth_table.max_arity) int64)
    (fun (arity, bits) ->
      let t = Truth_table.of_bits ~arity bits in
      Truth_table.equal t
        (Truth_table.permute t ~arity (Array.init arity (fun i -> i))))

(* --- gates --- *)

let test_gate_eval () =
  check Alcotest.bool "and" true (Gate.eval Gate.And2 [| true; true |]);
  check Alcotest.bool "nand" false (Gate.eval Gate.Nand2 [| true; true |]);
  check Alcotest.bool "xor" true (Gate.eval Gate.Xor2 [| true; false |]);
  check Alcotest.bool "mux sel0" true (Gate.eval Gate.Mux2 [| false; true; false |]);
  check Alcotest.bool "mux sel1" false (Gate.eval Gate.Mux2 [| true; true; false |]);
  check Alcotest.bool "const" true (Gate.eval (Gate.Const true) [||])

let test_gate_truth_table () =
  let tt = Gate.truth_table Gate.And2 in
  check Alcotest.int64 "and2 table" 0x8L (Truth_table.bits tt);
  let mux = Gate.truth_table Gate.Mux2 in
  (* fanins [sel; a; b]: sel is var 0. *)
  check Alcotest.bool "mux table" true
    (Truth_table.eval mux [| true; false; true |])

(* --- gate netlists --- *)

let test_netlist_topo_invariant () =
  let t = Gate_netlist.create () in
  let a = Gate_netlist.add_input t "a" in
  Alcotest.check_raises "fanin must exist"
    (Invalid_argument "Gate_netlist.add_gate: undefined fanin")
    (fun () -> ignore (Gate_netlist.add_gate t Gate.And2 [| a; 99 |]))

let test_netlist_levels_depth () =
  let t = Gate_netlist.create () in
  let a = Gate_netlist.add_input t "a" in
  let b = Gate_netlist.add_input t "b" in
  let x = Gate_netlist.add_gate t Gate.And2 [| a; b |] in
  let y = Gate_netlist.add_gate t Gate.Or2 [| x; b |] in
  Gate_netlist.mark_output t "y" y;
  let lv = Gate_netlist.levels t in
  check Alcotest.int "pi level" 0 lv.(a);
  check Alcotest.int "and level" 1 lv.(x);
  check Alcotest.int "or level" 2 lv.(y);
  check Alcotest.int "depth" 2 (Gate_netlist.depth t)

let test_netlist_simulation () =
  let t = Gate_netlist.create () in
  let a = Gate_netlist.add_input t "a" in
  let b = Gate_netlist.add_input t "b" in
  let s, c = Gen.half_adder t a b in
  Gate_netlist.mark_output t "s" s;
  Gate_netlist.mark_output t "c" c;
  List.iter
    (fun (va, vb, vs, vc) ->
      let outs = Gate_netlist.output_values t [| va; vb |] in
      check Alcotest.bool "sum" vs (List.assoc "s" outs);
      check Alcotest.bool "carry" vc (List.assoc "c" outs))
    [ (false, false, false, false);
      (true, false, true, false);
      (false, true, true, false);
      (true, true, false, true) ]

let bits_to_int bus values =
  Array.to_list bus
  |> List.mapi (fun i id -> if values.(id) then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let int_to_bools width v = Array.init width (fun i -> v lsr i land 1 = 1)

(* Exhaustive functional check of the adder generator at width 4. *)
let test_adder_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 4 in
  let sums, cout = Gen.ripple_carry_adder t a b in
  Gen.mark_output_bus t "s" sums;
  Gate_netlist.mark_output t "cout" cout;
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let ins = Array.append (int_to_bools 4 va) (int_to_bools 4 vb) in
      let values = Gate_netlist.simulate t ins in
      let s = bits_to_int sums values in
      let c = if values.(cout) then 1 else 0 in
      check Alcotest.int
        (Printf.sprintf "%d+%d" va vb)
        (va + vb) (s + (c lsl 4))
    done
  done

let test_subtractor_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 4 in
  let diff, _ = Gen.subtractor t a b in
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let ins = Array.append (int_to_bools 4 va) (int_to_bools 4 vb) in
      let values = Gate_netlist.simulate t ins in
      check Alcotest.int
        (Printf.sprintf "%d-%d" va vb)
        ((va - vb) land 15)
        (bits_to_int diff values)
    done
  done

let test_multiplier_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 3 in
  let p = Gen.array_multiplier t a b in
  check Alcotest.int "product width" 7 (Array.length p);
  for va = 0 to 15 do
    for vb = 0 to 7 do
      let ins = Array.append (int_to_bools 4 va) (int_to_bools 3 vb) in
      let values = Gate_netlist.simulate t ins in
      check Alcotest.int
        (Printf.sprintf "%d*%d" va vb)
        (va * vb) (bits_to_int p values)
    done
  done

let test_carry_select_adder_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 6 in
  let b = Gen.input_bus t "b" 6 in
  let sums, cout = Gen.carry_select_adder ~block:3 t a b in
  for va = 0 to 63 do
    for vb = 0 to 63 do
      let ins = Array.append (int_to_bools 6 va) (int_to_bools 6 vb) in
      let values = Gate_netlist.simulate t ins in
      let s = bits_to_int sums values in
      let c = if values.(cout) then 1 else 0 in
      check Alcotest.int (Printf.sprintf "%d+%d" va vb) (va + vb) (s + (c lsl 6))
    done
  done

let test_wallace_multiplier_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 4 in
  let p = Gen.wallace_multiplier t a b in
  check Alcotest.int "product width" 8 (Array.length p);
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let ins = Array.append (int_to_bools 4 va) (int_to_bools 4 vb) in
      let values = Gate_netlist.simulate t ins in
      check Alcotest.int (Printf.sprintf "%d*%d" va vb) (va * vb) (bits_to_int p values)
    done
  done

let test_wallace_shallower_than_array () =
  let depth_of build =
    let t = Gate_netlist.create () in
    let a = Gen.input_bus t "a" 12 in
    let b = Gen.input_bus t "b" 12 in
    let p = build t a b in
    Gen.mark_output_bus t "p" p;
    Gate_netlist.depth t
  in
  let wallace = depth_of Gen.wallace_multiplier in
  let array_d = depth_of Gen.array_multiplier in
  check Alcotest.bool
    (Printf.sprintf "wallace %d < array %d" wallace array_d)
    true (wallace < array_d)

let test_comparators_exhaustive () =
  let t = Gate_netlist.create () in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 4 in
  let eq = Gen.equality t a b in
  let lt = Gen.less_than t a b in
  for va = 0 to 15 do
    for vb = 0 to 15 do
      let ins = Array.append (int_to_bools 4 va) (int_to_bools 4 vb) in
      let values = Gate_netlist.simulate t ins in
      check Alcotest.bool "eq" (va = vb) values.(eq);
      check Alcotest.bool "lt" (va < vb) values.(lt)
    done
  done

let test_mux_and_trees () =
  let t = Gate_netlist.create () in
  let sel = Gate_netlist.add_input t "sel" in
  let a = Gen.input_bus t "a" 3 in
  let b = Gen.input_bus t "b" 3 in
  let m = Gen.mux_bus t sel a b in
  let ins vsel va vb =
    Array.concat [ [| vsel |]; int_to_bools 3 va; int_to_bools 3 vb ]
  in
  let values = Gate_netlist.simulate t (ins false 5 2) in
  check Alcotest.int "mux sel=0 picks a" 5 (bits_to_int m values);
  let values = Gate_netlist.simulate t (ins true 5 2) in
  check Alcotest.int "mux sel=1 picks b" 2 (bits_to_int m values)

let test_trees_exhaustive () =
  let t = Gate_netlist.create () in
  let xs = Gen.input_bus t "x" 5 in
  let a = Gen.and_tree t (Array.to_list xs) in
  let o = Gen.or_tree t (Array.to_list xs) in
  let x = Gen.xor_tree t (Array.to_list xs) in
  for v = 0 to 31 do
    let ins = int_to_bools 5 v in
    let values = Gate_netlist.simulate t ins in
    check Alcotest.bool "and_tree" (v = 31) values.(a);
    check Alcotest.bool "or_tree" (v <> 0) values.(o);
    let parity = Array.fold_left (fun acc b -> acc <> b) false ins in
    check Alcotest.bool "xor_tree" parity values.(x)
  done

let test_empty_trees () =
  let t = Gate_netlist.create () in
  let a = Gen.and_tree t [] in
  let o = Gen.or_tree t [] in
  let values = Gate_netlist.simulate t [||] in
  check Alcotest.bool "empty and = 1" true values.(a);
  check Alcotest.bool "empty or = 0" false values.(o)

let test_decoder () =
  let t = Gate_netlist.create () in
  let sel = Gen.input_bus t "s" 3 in
  let outs = Gen.decoder t sel in
  check Alcotest.int "8 outputs" 8 (Array.length outs);
  for v = 0 to 7 do
    let values = Gate_netlist.simulate t (int_to_bools 3 v) in
    Array.iteri
      (fun i o -> check Alcotest.bool "one-hot" (i = v) values.(o))
      outs
  done

let test_alu () =
  let t = Gate_netlist.create () in
  let op = Gen.input_bus t "op" 3 in
  let a = Gen.input_bus t "a" 4 in
  let b = Gen.input_bus t "b" 4 in
  let r, _ = Gen.alu t ~op a b in
  let run vop va vb =
    let ins = Array.concat [ int_to_bools 3 vop; int_to_bools 4 va; int_to_bools 4 vb ] in
    bits_to_int r (Gate_netlist.simulate t ins)
  in
  check Alcotest.int "add" ((7 + 9) land 15) (run 0 7 9);
  check Alcotest.int "sub" ((7 - 9) land 15) (run 1 7 9);
  check Alcotest.int "and" (12 land 10) (run 2 12 10);
  check Alcotest.int "or" (12 lor 10) (run 3 12 10);
  check Alcotest.int "xor" (12 lxor 10) (run 4 12 10);
  check Alcotest.int "pass a" 12 (run 5 12 10);
  check Alcotest.int "not a" (lnot 12 land 15) (run 6 12 10);
  check Alcotest.int "pass b" 10 (run 7 12 10)

let test_random_layered () =
  let rng = Rng.create 5 in
  let t = Gen.random_layered rng ~num_inputs:8 ~layers:6 ~layer_width:10 ~num_outputs:4 in
  check Alcotest.int "outputs" 4 (List.length (Gate_netlist.outputs t));
  check Alcotest.bool "has gates" true (Gate_netlist.num_gates t > 30);
  (* determinism *)
  let rng2 = Rng.create 5 in
  let t2 = Gen.random_layered rng2 ~num_inputs:8 ~layers:6 ~layer_width:10 ~num_outputs:4 in
  check Alcotest.int "deterministic size" (Gate_netlist.size t) (Gate_netlist.size t2)

let test_stats () =
  let t = Gate_netlist.create () in
  let a = Gate_netlist.add_input t "a" in
  let b = Gate_netlist.add_input t "b" in
  let x = Gate_netlist.add_gate t Gate.Xor2 [| a; b |] in
  Gate_netlist.mark_output t "x" x;
  let stats = Gate_netlist.stats t in
  check Alcotest.int "xor count" 1 (List.assoc "xor2" stats);
  check Alcotest.int "nodes" 3 (List.assoc "nodes" stats);
  check Alcotest.int "gates" 1 (Gate_netlist.num_gates t)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ tt_roundtrip_prop; tt_demorgan_prop; tt_of_fun_eval_prop; tt_shannon_prop;
      tt_permute_identity_prop ]

let () =
  Alcotest.run "logic"
    [ ( "truth_table",
        [ Alcotest.test_case "const" `Quick test_tt_const;
          Alcotest.test_case "var" `Quick test_tt_var;
          Alcotest.test_case "ops" `Quick test_tt_ops;
          Alcotest.test_case "of_fun" `Quick test_tt_of_fun;
          Alcotest.test_case "support" `Quick test_tt_support;
          Alcotest.test_case "arity mismatch" `Quick test_tt_arity_mismatch;
          Alcotest.test_case "arity zero" `Quick test_tt_arity_zero;
          Alcotest.test_case "identity/inverter" `Quick test_tt_identity_inverter;
          Alcotest.test_case "cofactor" `Quick test_tt_cofactor;
          Alcotest.test_case "permute" `Quick test_tt_permute ]
        @ qsuite );
      ( "gate",
        [ Alcotest.test_case "eval" `Quick test_gate_eval;
          Alcotest.test_case "truth table" `Quick test_gate_truth_table ] );
      ( "netlist",
        [ Alcotest.test_case "topo invariant" `Quick test_netlist_topo_invariant;
          Alcotest.test_case "levels/depth" `Quick test_netlist_levels_depth;
          Alcotest.test_case "simulation" `Quick test_netlist_simulation;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "generators",
        [ Alcotest.test_case "adder" `Quick test_adder_exhaustive;
          Alcotest.test_case "subtractor" `Quick test_subtractor_exhaustive;
          Alcotest.test_case "multiplier" `Quick test_multiplier_exhaustive;
          Alcotest.test_case "carry-select adder" `Quick test_carry_select_adder_exhaustive;
          Alcotest.test_case "wallace multiplier" `Quick test_wallace_multiplier_exhaustive;
          Alcotest.test_case "wallace depth" `Quick test_wallace_shallower_than_array;
          Alcotest.test_case "comparators" `Quick test_comparators_exhaustive;
          Alcotest.test_case "mux bus" `Quick test_mux_and_trees;
          Alcotest.test_case "trees" `Quick test_trees_exhaustive;
          Alcotest.test_case "empty trees" `Quick test_empty_trees;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "random layered" `Quick test_random_layered ] ) ]
