(* Tests for the physical back-end: temporal clustering, placement,
   routing-resource graph, PathFinder routing and bitstream generation. *)

module Rtl = Nanomap_rtl.Rtl
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Arch = Nanomap_arch.Arch
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Rr_graph = Nanomap_route.Rr_graph
module Router = Nanomap_route.Router
module Bitstream = Nanomap_bitstream.Bitstream
module Circuits = Nanomap_circuits.Circuits
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network

let check = Alcotest.check

let small_plan level =
  let b = Circuits.ex1_small () in
  let p = Mapper.prepare b.Circuits.design in
  let arch = Arch.unbounded_k in
  let plan =
    if level = 0 then Mapper.no_folding p ~arch else Mapper.plan_level p ~arch ~level
  in
  (plan, arch)

(* --- cluster --- *)

let test_cluster_all_luts_placed () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  Cluster.validate cl plan;
  let total_luts =
    Array.fold_left
      (fun acc pl -> acc + Lut_network.num_luts pl.Mapper.network)
      0 plan.Mapper.planes
  in
  check Alcotest.int "every LUT has a slot" total_luts (Hashtbl.length cl.Cluster.lut_slots)

let test_cluster_no_le_conflicts () =
  (* validate already checks; also confirm a mid folding level *)
  let plan, arch = small_plan 2 in
  let cl = Cluster.pack plan ~arch in
  Cluster.validate cl plan

let test_cluster_area_close_to_plan () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  check Alcotest.bool "clustering within 2x of scheduler bound" true
    (cl.Cluster.les_used <= 2 * plan.Mapper.les);
  check Alcotest.bool "clustering not below LUT need" true
    (Cluster.area_les cl >= plan.Mapper.les)

let test_cluster_state_bits_have_homes () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  (* every register bit read by some plane must have a home flip-flop *)
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      Lut_network.iter
        (fun _ -> function
          | Lut_network.Input (Lut_network.Register_bit (r, b)) ->
            check Alcotest.bool "state home exists" true
              (Hashtbl.mem cl.Cluster.ff_slots (Cluster.V_state (r, b)))
          | Lut_network.Input
              (Lut_network.Pi_bit _ | Lut_network.Const_bit _ | Lut_network.Wire_bit _)
          | Lut_network.Lut _ -> ())
        pl.Mapper.network)
    plan.Mapper.planes

let test_cluster_nets_have_sinks () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  List.iter
    (fun (n : Cluster.net) ->
      check Alcotest.bool "non-empty" true (n.Cluster.sinks <> []);
      check Alcotest.bool "driver not in sinks" true
        (not (List.mem n.Cluster.driver n.Cluster.sinks)))
    cl.Cluster.nets

let test_cluster_stats () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let stats = Cluster.interconnect_stats cl in
  check Alcotest.int "net count" (List.length cl.Cluster.nets) (List.assoc "nets" stats)

let test_smb_local_analysis () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let before = Nanomap_cluster.Smb_local.analyze cl plan in
  (* the packer's conservative pin guard must keep the exact count legal *)
  check Alcotest.int "no SMB pin violations" 0 before.Nanomap_cluster.Smb_local.smb_pin_violations;
  check Alcotest.bool "pin usage within cap" true
    (before.Nanomap_cluster.Smb_local.max_smb_inputs <= arch.Arch.smb_input_pins);
  let _moved = Nanomap_cluster.Smb_local.rebalance cl plan in
  Cluster.validate cl plan;
  let after = Nanomap_cluster.Smb_local.analyze cl plan in
  check Alcotest.int "rebalance keeps pins legal" 0
    after.Nanomap_cluster.Smb_local.smb_pin_violations;
  check Alcotest.bool "rebalance does not hurt MB ports" true
    (after.Nanomap_cluster.Smb_local.max_mb_ports
    <= before.Nanomap_cluster.Smb_local.max_mb_ports);
  check Alcotest.bool "some locality" true
    (after.Nanomap_cluster.Smb_local.local_connections > 0)

let test_smb_pin_guard_spreads () =
  (* a tiny pin budget must force the packer onto more SMBs, legally *)
  let b = Circuits.ex1_small () in
  let p = Mapper.prepare b.Circuits.design in
  let tight = { Arch.unbounded_k with Arch.smb_input_pins = 8 } in
  let plan = Mapper.plan_level p ~arch:tight ~level:2 in
  let cl = Cluster.pack plan ~arch:tight in
  Cluster.validate cl plan;
  let r = Nanomap_cluster.Smb_local.analyze cl plan in
  check Alcotest.int "still no violations" 0 r.Nanomap_cluster.Smb_local.smb_pin_violations;
  let roomy = Arch.unbounded_k in
  let cl2 = Cluster.pack (Mapper.plan_level p ~arch:roomy ~level:2) ~arch:roomy in
  check Alcotest.bool "tight pins need at least as many SMBs" true
    (cl.Cluster.num_smbs >= cl2.Cluster.num_smbs)

(* --- place --- *)

let test_place_legal_and_deterministic () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let p1 = Place.place ~seed:7 cl in
  let p2 = Place.place ~seed:7 cl in
  Place.validate p1 cl;
  check Alcotest.bool "deterministic" true (p1.Place.smb_xy = p2.Place.smb_xy)

let test_place_improves_over_initial () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  (* an "identity" placement is the annealer's starting point; the detailed
     result should not be worse *)
  let detailed = Place.place ~effort:`Detailed cl in
  let fast = Place.place ~effort:`Fast cl in
  check Alcotest.bool "hpwl positive" true (detailed.Place.hpwl > 0.0);
  check Alcotest.bool "detailed <= fast * 1.05" true
    (detailed.Place.hpwl <= (fast.Place.hpwl *. 1.05) +. 1.0)

let test_place_routability_positive () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let p = Place.place ~effort:`Fast cl in
  check Alcotest.bool "routability finite" true (Place.routability p cl > 0.0);
  check Alcotest.bool "timing positive" true (Place.timing_estimate p cl plan > 0.0)

(* --- sat place: the exact engine against the annealer --- *)

module Defect = Nanomap_arch.Defect
module Sat_place = Nanomap_place.Sat_place
module Check = Nanomap_flow.Check
module Diag = Nanomap_util.Diag

let sat_fixture () =
  let plan, arch = small_plan 1 in
  (Cluster.pack plan ~arch, arch)

let test_sat_place_clean_fabric () =
  let cl, _ = sat_fixture () in
  match Sat_place.solve cl with
  | Sat_place.Placed p ->
    Place.validate p cl;
    check Alcotest.bool "hpwl positive" true (p.Place.hpwl > 0.0);
    (match Check.place Check.Full cl p with
     | Ok () -> ()
     | Error d -> Alcotest.failf "clean SAT placement rejected: %s" (Diag.to_string d))
  | Sat_place.Unsat_proven -> Alcotest.fail "clean fabric proven unplaceable"
  | Sat_place.Gave_up -> Alcotest.fail "solver gave up on a clean fabric"

(* Differential battery: across defect rates 0-20%, every Placed outcome
   passes the Full checkers, and Unsat_proven agrees with exhaustive
   backtracking enumeration — the solver is never allowed to be
   undecided at this size. *)
let test_sat_place_defect_sweep () =
  let cl, arch = sat_fixture () in
  let width, height = Place.grid_dims cl in
  List.iter
    (fun rate ->
      List.iter
        (fun seed ->
          let defects =
            if rate = 0.0 then Defect.none
            else Defect.random_les ~seed ~fraction:rate ~width ~height arch
          in
          let tag = Printf.sprintf "rate %.2f seed %d" rate seed in
          match Sat_place.solve ~defects cl with
          | Sat_place.Placed p ->
            Place.validate p cl;
            (match Check.place Check.Full ~defects cl p with
             | Ok () -> ()
             | Error d ->
               Alcotest.failf "%s: placement rejected: %s" tag (Diag.to_string d));
            check Alcotest.bool (tag ^ ": witness implies exhaustive") true
              (Sat_place.exhaustive_exists ~defects cl)
          | Sat_place.Unsat_proven ->
            check Alcotest.bool (tag ^ ": certificate implies no assignment") false
              (Sat_place.exhaustive_exists ~defects cl)
          | Sat_place.Gave_up -> Alcotest.failf "%s: solver gave up" tag)
        [ 1; 2; 3; 4; 5 ])
    [ 0.0; 0.05; 0.10; 0.20 ]

let test_sat_place_all_dead_unsat () =
  let cl, arch = sat_fixture () in
  let width, height = Place.grid_dims cl in
  let les = ref [] in
  for x = 0 to width - 1 do
    for y = 0 to height - 1 do
      for mb = 0 to arch.Arch.mbs_per_smb - 1 do
        for le = 0 to arch.Arch.les_per_mb - 1 do
          les := (x, y, mb, le) :: !les
        done
      done
    done
  done;
  let defects = { Defect.none with Defect.les = List.rev !les } in
  (match Sat_place.solve ~defects cl with
   | Sat_place.Unsat_proven -> ()
   | Sat_place.Placed _ -> Alcotest.fail "placed on an all-dead fabric"
   | Sat_place.Gave_up -> Alcotest.fail "gave up on a trivially unsat fabric");
  check Alcotest.bool "exhaustive agrees" false
    (Sat_place.exhaustive_exists ~defects cl)

(* distance_bound is solved un-refined (the annealer does not model it):
   every connected SMB pair in the decoded placement must obey the bound,
   and an impossible bound must come back Unsat, not Placed. *)
let test_sat_place_distance_bound () =
  let cl, _ = sat_fixture () in
  let width, height = Place.grid_dims cl in
  let loose = width + height in
  (match Sat_place.solve ~distance_bound:loose ~refine:false cl with
   | Sat_place.Placed p -> Place.validate p cl
   | Sat_place.Unsat_proven -> Alcotest.fail "loose bound proven unsat"
   | Sat_place.Gave_up -> Alcotest.fail "solver gave up under a loose bound");
  match Sat_place.solve ~distance_bound:0 ~refine:false cl with
  | Sat_place.Placed p ->
    (* a 0 bound is satisfiable only if no two connected SMBs exist;
       validate the claim rather than assuming the fixture's shape *)
    Place.validate p cl
  | Sat_place.Unsat_proven | Sat_place.Gave_up -> ()

(* --- rr graph --- *)

let test_rr_graph_shapes () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let p = Place.place ~effort:`Fast cl in
  let g = Rr_graph.build ~arch p in
  let stats = Rr_graph.stats g in
  check Alcotest.bool "has len1 wires" true (List.assoc "len1" stats > 0);
  check Alcotest.bool "has globals" true (List.assoc "global" stats > 0);
  (* all adjacency targets in range *)
  Array.iter
    (List.iter (fun v ->
         check Alcotest.bool "edge target in range" true (v >= 0 && v < g.Rr_graph.num_nodes)))
    g.Rr_graph.adj

let test_rr_graph_full_reachability () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let p = Place.place ~effort:`Fast cl in
  let g = Rr_graph.build ~arch p in
  (* BFS from SMB 0's source must reach every SMB sink and pad sink *)
  let seen = Array.make g.Rr_graph.num_nodes false in
  let q = Queue.create () in
  Queue.add g.Rr_graph.src_of_smb.(0) q;
  seen.(g.Rr_graph.src_of_smb.(0)) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      g.Rr_graph.adj.(u)
  done;
  Array.iter
    (fun snk -> check Alcotest.bool "smb sink reachable" true seen.(snk))
    g.Rr_graph.sink_of_smb;
  Array.iter
    (fun snk -> check Alcotest.bool "pad sink reachable" true seen.(snk))
    g.Rr_graph.sink_of_pad

(* --- router --- *)

let routed_fixture level =
  let plan, arch = small_plan level in
  let cl = Cluster.pack plan ~arch in
  let p = Place.place ~effort:`Fast cl in
  let r, factor = Router.route_adaptive p cl plan in
  (plan, cl, r, factor)

let test_router_succeeds_and_validates () =
  let _, _, r, _ = routed_fixture 1 in
  check Alcotest.bool "success" true r.Router.success;
  Router.validate r

let test_router_no_folding () =
  let _, _, r, _ = routed_fixture 0 in
  check Alcotest.bool "success" true r.Router.success;
  Router.validate r

let test_router_all_nets_routed () =
  let _, cl, r, _ = routed_fixture 1 in
  check Alcotest.int "every net routed" (List.length cl.Cluster.nets) r.Router.total_nets

let test_router_timing_positive () =
  let plan, _, r, _ = routed_fixture 1 in
  check Alcotest.bool "period sane" true
    (r.Router.folding_period_ns > 0.3 && r.Router.folding_period_ns < 50.0);
  ignore plan

let test_router_usage_stats_consistent () =
  let _, _, r, _ = routed_fixture 1 in
  let total_by_kind =
    List.fold_left (fun acc (_, v) -> acc + v) 0 r.Router.usage_by_kind
  in
  check Alcotest.int "usage = wirelength" r.Router.wirelength total_by_kind

(* --- bitstream --- *)

let test_bitstream_shape () =
  let plan, cl, r, _ = routed_fixture 1 in
  let bs = Bitstream.generate plan cl r in
  check Alcotest.bool "magic" true
    (Bytes.length bs.Bitstream.bytes > 5
    && Bytes.sub_string bs.Bitstream.bytes 0 5 = "NMAP2");
  check Alcotest.int "configs" plan.Mapper.configs_used bs.Bitstream.configs;
  check Alcotest.bool "nonzero luts" true (bs.Bitstream.lut_bits > 0);
  check Alcotest.bool "nonzero switches" true (bs.Bitstream.switch_bits > 0)

let test_bitstream_deterministic () =
  let plan, cl, r, _ = routed_fixture 1 in
  let b1 = Bitstream.generate plan cl r in
  let b2 = Bitstream.generate plan cl r in
  check Alcotest.bool "identical bytes" true
    (Bytes.equal b1.Bitstream.bytes b2.Bitstream.bytes)

let test_bitstream_roundtrip () =
  let plan, cl, r, _ = routed_fixture 1 in
  let bs = Bitstream.generate plan cl r in
  let configs = Bitstream.parse bs.Bitstream.bytes in
  check Alcotest.int "config count" plan.Mapper.configs_used (Array.length configs);
  (* total LE configurations = total scheduled LUTs *)
  let total_les =
    Array.fold_left (fun acc c -> acc + List.length c.Bitstream.les) 0 configs
  in
  let total_luts =
    Array.fold_left
      (fun acc pl -> acc + Lut_network.num_luts pl.Mapper.network)
      0 plan.Mapper.planes
  in
  check Alcotest.int "LE sections cover all LUTs" total_luts total_les;
  (* switch records match the router's wirelength *)
  let total_switches =
    Array.fold_left (fun acc c -> acc + List.length c.Bitstream.switches) 0 configs
  in
  check Alcotest.int "switch records = wirelength" r.Router.wirelength total_switches;
  (* corrupt magic is rejected *)
  let bad = Bytes.copy bs.Bitstream.bytes in
  Bytes.set bad 0 'X';
  check Alcotest.bool "bad magic rejected" true
    (match Bitstream.parse bad with exception Bitstream.Corrupt _ -> true | _ -> false)

let test_bitstream_nram_accounting () =
  let plan, cl, r, _ = routed_fixture 1 in
  let bs = Bitstream.generate plan cl r in
  let used, cap = Bitstream.nram_bits_required bs Arch.default in
  check Alcotest.int "configs used" plan.Mapper.configs_used used;
  check Alcotest.bool "cap is k" true (cap = Some 16)

(* --- parallel-vs-serial equivalence for the physical layers: the pool
   must change the wall clock only. Both the placement portfolio and the
   folding-level sweep are compared field-by-field against their serial
   runs; the jobs=4 leg exercises the pool code path even on machines
   where physical workers cap at one domain. --- *)

module Pool = Nanomap_util.Pool

let place_fingerprint (p : Place.t) =
  let b = Buffer.create 256 in
  Printf.bprintf b "hpwl=%.6f xy=" p.Place.hpwl;
  Array.iter (fun (x, y) -> Printf.bprintf b "%d,%d;" x y) p.Place.smb_xy;
  Array.iter (fun (x, y) -> Printf.bprintf b "%d,%d!" x y) p.Place.pad_xy;
  Buffer.contents b

let test_portfolio_jobs_equivalent () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Place.portfolio ~pool ~count:6 ~seed:3 ~effort:`Detailed cl)
  in
  let serial = Place.portfolio ~count:6 ~seed:3 ~effort:`Detailed cl in
  let p1 = run 1 and p4 = run 4 in
  check Alcotest.string "jobs=1 = no pool" (place_fingerprint serial)
    (place_fingerprint p1);
  check Alcotest.string "jobs=4 = jobs=1" (place_fingerprint p1)
    (place_fingerprint p4)

let test_portfolio_best_of () =
  (* The portfolio winner can never be worse than its own first seed,
     which is exactly what a plain [place] at the same seed produces. *)
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let single = Place.place ~seed:3 ~effort:`Detailed cl in
  let best = Place.portfolio ~count:6 ~seed:3 ~effort:`Detailed cl in
  Place.validate best cl;
  check Alcotest.bool "portfolio <= single" true
    (best.Place.hpwl <= single.Place.hpwl);
  (* count=1 degenerates to the plain placer *)
  let one = Place.portfolio ~count:1 ~seed:3 ~effort:`Detailed cl in
  check Alcotest.string "count=1 = place" (place_fingerprint single)
    (place_fingerprint one)

(* The SA-vs-SAT race must pick the identical winner — same arm, same
   placement — whether the two arms run serially or overlap on a
   four-worker pool: the winner rule is a pure function of the two
   arms' results. Checked on a clean fabric and on a defective one. *)
let test_race_jobs_equivalent () =
  let plan, arch = small_plan 1 in
  let cl = Cluster.pack plan ~arch in
  let width, height = Place.grid_dims cl in
  let fingerprint (p, winner) =
    Printf.sprintf "%s|%s"
      (match winner with `Sa -> "sa" | `Sat -> "sat")
      (place_fingerprint p)
  in
  List.iter
    (fun (label, defects) ->
      let run jobs =
        Pool.with_pool ~jobs (fun pool ->
            fingerprint (Sat_place.race ~pool ~count:4 ~seed:3 ~defects cl))
      in
      let serial = fingerprint (Sat_place.race ~count:4 ~seed:3 ~defects cl) in
      check Alcotest.string (label ^ ": jobs=1 = no pool") serial (run 1);
      check Alcotest.string (label ^ ": jobs=4 = no pool") serial (run 4))
    [ ("clean", Defect.none);
      ("defective",
       Defect.random_les ~seed:11 ~fraction:0.05 ~width ~height arch) ]

let test_sweep_jobs_equivalent () =
  let b = Circuits.ex1_small () in
  let p = Mapper.prepare b.Circuits.design in
  let arch = Arch.unbounded_k in
  let fingerprint plans =
    List.map
      (fun ((level, plan) : int * Mapper.plan) ->
        Printf.sprintf "%d:%d:%d:%.6f" level plan.Mapper.stages
          plan.Mapper.les plan.Mapper.delay_ns)
      plans
    |> String.concat "|"
  in
  let serial = fingerprint (Mapper.sweep p ~arch) in
  let pooled jobs =
    Pool.with_pool ~jobs (fun pool ->
        fingerprint (Mapper.sweep ~pool p ~arch))
  in
  check Alcotest.string "jobs=1 = serial" serial (pooled 1);
  check Alcotest.string "jobs=4 = serial" serial (pooled 4)

let () =
  Alcotest.run "physical"
    [ ( "cluster",
        [ Alcotest.test_case "all LUTs placed" `Quick test_cluster_all_luts_placed;
          Alcotest.test_case "no LE conflicts" `Quick test_cluster_no_le_conflicts;
          Alcotest.test_case "area close to plan" `Quick test_cluster_area_close_to_plan;
          Alcotest.test_case "state homes" `Quick test_cluster_state_bits_have_homes;
          Alcotest.test_case "net shape" `Quick test_cluster_nets_have_sinks;
          Alcotest.test_case "stats" `Quick test_cluster_stats ] );
      ( "smb-local",
        [ Alcotest.test_case "analysis + rebalance" `Quick test_smb_local_analysis;
          Alcotest.test_case "pin guard spreads" `Quick test_smb_pin_guard_spreads ] );
      ( "place",
        [ Alcotest.test_case "legal + deterministic" `Quick
            test_place_legal_and_deterministic;
          Alcotest.test_case "quality" `Quick test_place_improves_over_initial;
          Alcotest.test_case "estimates" `Quick test_place_routability_positive ] );
      ( "sat-place",
        [ Alcotest.test_case "clean fabric" `Quick test_sat_place_clean_fabric;
          Alcotest.test_case "defect sweep vs exhaustive" `Quick
            test_sat_place_defect_sweep;
          Alcotest.test_case "all-dead fabric unsat" `Quick
            test_sat_place_all_dead_unsat;
          Alcotest.test_case "distance bound" `Quick
            test_sat_place_distance_bound ] );
      ( "rr_graph",
        [ Alcotest.test_case "shapes" `Quick test_rr_graph_shapes;
          Alcotest.test_case "reachability" `Quick test_rr_graph_full_reachability ] );
      ( "router",
        [ Alcotest.test_case "success + valid" `Quick test_router_succeeds_and_validates;
          Alcotest.test_case "no-folding" `Quick test_router_no_folding;
          Alcotest.test_case "all nets routed" `Quick test_router_all_nets_routed;
          Alcotest.test_case "timing" `Quick test_router_timing_positive;
          Alcotest.test_case "usage stats" `Quick test_router_usage_stats_consistent ] );
      ( "bitstream",
        [ Alcotest.test_case "shape" `Quick test_bitstream_shape;
          Alcotest.test_case "deterministic" `Quick test_bitstream_deterministic;
          Alcotest.test_case "roundtrip" `Quick test_bitstream_roundtrip;
          Alcotest.test_case "nram accounting" `Quick test_bitstream_nram_accounting ] );
      ( "parallel",
        [ Alcotest.test_case "portfolio jobs-equivalent" `Quick
            test_portfolio_jobs_equivalent;
          Alcotest.test_case "portfolio best-of" `Quick test_portfolio_best_of;
          Alcotest.test_case "race jobs-equivalent" `Quick
            test_race_jobs_equivalent;
          Alcotest.test_case "folding sweep jobs-equivalent" `Quick
            test_sweep_jobs_equivalent ] ) ]
