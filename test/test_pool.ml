(* The pool's determinism contract, exercised hard: results pinned to
   submission order under adversarial task durations, first-failure-wins
   exception propagation that leaves the pool reusable, the zero-task and
   single-worker edges, and an atomic-counter stress proving Telemetry
   loses no increments under concurrent bumps.

   Every concurrency test creates its pool with [~oversubscribe:true]:
   without it the pool caps physical workers at the machine's core count,
   and on a single-core CI box nothing would actually run in parallel. *)

module Pool = Nanomap_util.Pool
module Rng = Nanomap_util.Rng
module Diag = Nanomap_util.Diag
module Telemetry = Nanomap_util.Telemetry

let check = Alcotest.check

(* A crude compute-bound delay: sleeping would let a single-core scheduler
   serialize the test, a spin keeps every domain genuinely busy. *)
let spin_for iterations =
  let acc = ref 0 in
  for i = 1 to iterations do
    acc := (!acc * 31) + i
  done;
  Sys.opaque_identity !acc

(* ---------------------------------------------------------- ordering *)

let test_ordering_adversarial () =
  (* Early indices take the longest, so completion order is roughly the
     reverse of submission order — results must come back in submission
     order anyway. *)
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let n = 64 in
      let xs = Array.init n Fun.id in
      let ys =
        Pool.map pool xs ~f:(fun i ->
            ignore (spin_for ((n - i) * 2000));
            i * i)
      in
      check (Alcotest.array Alcotest.int) "submission order"
        (Array.init n (fun i -> i * i))
        ys)

let test_mapi_passes_index () =
  Pool.with_pool ~jobs:3 ~oversubscribe:true (fun pool ->
      let xs = Array.make 32 10 in
      let ys = Pool.mapi pool xs ~f:(fun i x -> (i * 100) + x) in
      check (Alcotest.array Alcotest.int) "index threaded"
        (Array.init 32 (fun i -> (i * 100) + 10))
        ys)

let test_map_reduce_ordered () =
  (* String concatenation is order-sensitive: any merge not in submission
     order changes the result. *)
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let xs = Array.init 40 Fun.id in
      let s =
        Pool.map_reduce pool xs
          ~f:(fun i ->
            ignore (spin_for ((40 - i) * 1000));
            string_of_int i ^ ",")
          ~combine:( ^ ) ~init:""
      in
      let expected =
        Array.to_list xs |> List.map (fun i -> string_of_int i ^ ",")
        |> String.concat ""
      in
      check Alcotest.string "ordered fold" expected s)

let test_map_seeded_worker_invariant () =
  (* The same parent seed must produce the same per-task streams whether
     the map runs serially or on four oversubscribed domains. *)
  let draws jobs =
    Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
        let rng = Rng.create 2024 in
        Pool.map_seeded pool ~rng
          ~f:(fun task_rng i ->
            ignore (spin_for (((17 * i) mod 29) * 500));
            Rng.int task_rng 1_000_000)
          (Array.init 24 Fun.id))
  in
  check
    (Alcotest.array Alcotest.int)
    "jobs=1 = jobs=4" (draws 1) (draws 4)

(* ------------------------------------------------------- exceptions *)

exception Boom of int

let test_first_failure_wins () =
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool (Array.init 32 Fun.id) ~f:(fun i ->
                 (* Make the higher-index failure finish first. *)
                 ignore (spin_for (if i = 3 then 200_000 else 100));
                 if i = 3 || i = 17 then raise (Boom i);
                 i));
          None
        with Boom i -> Some i
      in
      check (Alcotest.option Alcotest.int) "lowest index wins" (Some 3) raised;
      (* A failing map must not poison the pool. *)
      let ys = Pool.map pool (Array.init 8 Fun.id) ~f:(fun i -> i + 1) in
      check (Alcotest.array Alcotest.int) "pool reusable"
        (Array.init 8 (fun i -> i + 1))
        ys)

let test_diag_fail_surfaces () =
  (* A Diag.Fail from a worker domain must surface at the join exactly as
     serial code would raise it — payload intact. *)
  Pool.with_pool ~jobs:2 ~oversubscribe:true (fun pool ->
      match
        Pool.map pool (Array.init 6 Fun.id) ~f:(fun i ->
            if i = 2 then
              Diag.fail ~stage:"place" ~code:"pool-test" "synthetic failure"
            else i)
      with
      | _ -> Alcotest.fail "expected Diag.Fail"
      | exception Diag.Fail d ->
        check Alcotest.string "stage" "place" d.Diag.stage;
        check Alcotest.string "code" "pool-test" d.Diag.code)

let test_every_task_runs_despite_failure () =
  (* Exception capture is per task: one failure must not skip the rest. *)
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let ran = Array.make 48 false in
      (try
         ignore
           (Pool.map pool (Array.init 48 Fun.id) ~f:(fun i ->
                ran.(i) <- true;
                if i = 0 then failwith "early"))
       with Failure _ -> ());
      check Alcotest.bool "all tasks ran" true (Array.for_all Fun.id ran))

(* ------------------------------------------------------------ edges *)

let test_zero_tasks () =
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let ys = Pool.map pool [||] ~f:(fun _ -> Alcotest.fail "ran a task") in
      check Alcotest.int "empty result" 0 (Array.length ys);
      check Alcotest.int "reduce over nothing" 7
        (Pool.map_reduce pool [||] ~f:Fun.id ~combine:( + ) ~init:7))

let test_single_worker_spawns_nothing () =
  let pool = Pool.create ~jobs:1 () in
  check Alcotest.int "jobs" 1 (Pool.jobs pool);
  check Alcotest.int "workers" 1 (Pool.workers pool);
  let ys = Pool.map pool (Array.init 16 Fun.id) ~f:(fun i -> i * 3) in
  check (Alcotest.array Alcotest.int) "serial map"
    (Array.init 16 (fun i -> i * 3))
    ys;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_workers_capped_by_hardware () =
  let pool = Pool.create ~jobs:64 () in
  check Alcotest.int "jobs is the request" 64 (Pool.jobs pool);
  check Alcotest.bool "workers capped" true
    (Pool.workers pool <= Domain.recommended_domain_count ());
  Pool.shutdown pool

let test_use_after_shutdown () =
  let pool = Pool.create ~jobs:2 ~oversubscribe:true () in
  Pool.shutdown pool;
  Alcotest.check_raises "raises" (Invalid_argument "Pool: used after shutdown")
    (fun () -> ignore (Pool.map pool [| 1 |] ~f:Fun.id))

let test_nested_map_rejected () =
  Pool.with_pool ~jobs:2 ~oversubscribe:true (fun pool ->
      match
        Pool.map pool [| 0 |] ~f:(fun _ ->
            Pool.map pool [| 1 |] ~f:Fun.id)
      with
      | _ -> Alcotest.fail "nested map must be rejected"
      | exception Invalid_argument _ -> ())

let test_resolve_jobs () =
  check Alcotest.int "positive passthrough" 3 (Pool.resolve_jobs 3);
  check Alcotest.int "zero is auto" (Pool.default_jobs ()) (Pool.resolve_jobs 0);
  check Alcotest.int "negative is auto" (Pool.default_jobs ())
    (Pool.resolve_jobs (-5));
  check Alcotest.bool "default at least 1" true (Pool.default_jobs () >= 1);
  check Alcotest.bool "default capped" true (Pool.default_jobs () <= 8)

(* --------------------------------------------------- counter stress *)

let test_counter_stress () =
  (* Four domains hammering the same counters: the striped atomics must
     not lose a single increment, and [add] must compose with [incr]. *)
  let c_incr = Telemetry.counter "test.pool.stress_incr" in
  let c_add = Telemetry.counter "test.pool.stress_add" in
  let before_incr = Telemetry.value c_incr in
  let before_add = Telemetry.value c_add in
  let per_task = 50_000 and tasks = 8 in
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      ignore
        (Pool.map pool (Array.init tasks Fun.id) ~f:(fun i ->
             for _ = 1 to per_task do
               Telemetry.incr c_incr
             done;
             Telemetry.add c_add (i + 1))));
  check Alcotest.int "no lost incr" (tasks * per_task)
    (Telemetry.value c_incr - before_incr);
  check Alcotest.int "no lost add"
    (tasks * (tasks + 1) / 2)
    (Telemetry.value c_add - before_add)

(* QCheck: for arbitrary task counts and per-task bump counts, the total
   observed by [value] is exactly the sum of what every domain did. *)
let counter_sum_prop =
  QCheck.Test.make ~count:30 ~name:"concurrent counter bumps sum exactly"
    QCheck.(pair (int_range 0 20) (list_of_size (Gen.int_range 0 20) (int_range 0 2000)))
    (fun (extra, bumps) ->
      let c = Telemetry.counter "test.pool.qcheck" in
      let before = Telemetry.value c in
      let bumps = Array.of_list bumps in
      Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
          ignore
            (Pool.map pool bumps ~f:(fun n ->
                 for _ = 1 to n do
                   Telemetry.incr c
                 done;
                 Telemetry.add c extra)));
      let expected =
        Array.fold_left ( + ) 0 bumps + (extra * Array.length bumps)
      in
      Telemetry.value c - before = expected)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "pool"
    [ ( "ordering",
        [ Alcotest.test_case "adversarial durations" `Quick
            test_ordering_adversarial;
          Alcotest.test_case "mapi index" `Quick test_mapi_passes_index;
          Alcotest.test_case "map_reduce ordered" `Quick
            test_map_reduce_ordered;
          Alcotest.test_case "map_seeded worker-invariant" `Quick
            test_map_seeded_worker_invariant ] );
      ( "exceptions",
        [ Alcotest.test_case "first failure wins, pool reusable" `Quick
            test_first_failure_wins;
          Alcotest.test_case "Diag.Fail surfaces intact" `Quick
            test_diag_fail_surfaces;
          Alcotest.test_case "all tasks still run" `Quick
            test_every_task_runs_despite_failure ] );
      ( "edges",
        [ Alcotest.test_case "zero tasks" `Quick test_zero_tasks;
          Alcotest.test_case "single worker" `Quick
            test_single_worker_spawns_nothing;
          Alcotest.test_case "hardware cap" `Quick
            test_workers_capped_by_hardware;
          Alcotest.test_case "use after shutdown" `Quick
            test_use_after_shutdown;
          Alcotest.test_case "nested map rejected" `Quick
            test_nested_map_rejected;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs ] );
      ( "counters",
        [ Alcotest.test_case "stress: no lost increments" `Quick
            test_counter_stress;
          to_alco counter_sum_prop ] ) ]
