(* Property-based tests over randomized inputs: random RTL designs through
   the entire flow (with emulator lockstep against the RTL simulator),
   random gate netlists through partitioning/scheduling, and algebraic
   invariants of the core data structures. *)

module Rtl = Nanomap_rtl.Rtl
module Truth_table = Nanomap_logic.Truth_table
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Decompose = Nanomap_techmap.Decompose
module Simplify = Nanomap_techmap.Simplify
module Flowmap = Nanomap_techmap.Flowmap
module Sched = Nanomap_core.Sched
module Fds = Nanomap_core.Fds
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch
module Cluster = Nanomap_cluster.Cluster
module Emulator = Nanomap_emu.Emulator
module Rng = Nanomap_util.Rng
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Diag = Nanomap_util.Diag

(* ------------------------------------------------ random RTL designs *)

(* A small synthesizable design with registers, feedback and a mix of every
   operator; deterministic in the seed. *)
let random_design seed =
  let rng = Rng.create seed in
  let d = Rtl.create (Printf.sprintf "rand%d" seed) in
  let pool = ref [] in
  let add id = pool := id :: !pool in
  let num_inputs = 2 + Rng.int rng 2 in
  for i = 0 to num_inputs - 1 do
    add (Rtl.add_input d (Printf.sprintf "in%d" i) (2 + Rng.int rng 4))
  done;
  let num_regs = 1 + Rng.int rng 2 in
  let regs =
    List.init num_regs (fun i ->
        let r = Rtl.add_register d ~name:(Printf.sprintf "r%d" i) ~width:(2 + Rng.int rng 4) () in
        add r;
        r)
  in
  let width_of id = (Rtl.signal d id).Rtl.width in
  let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
  let pick_width w =
    match List.filter (fun id -> width_of id = w) !pool with
    | [] -> Rtl.add_const d ~width:w (Rng.int rng (1 lsl w))
    | candidates -> List.nth candidates (Rng.int rng (List.length candidates))
  in
  let num_ops = 6 + Rng.int rng 10 in
  for _ = 1 to num_ops do
    let a = pick () in
    let w = width_of a in
    let op =
      match Rng.int rng 10 with
      | 0 -> Rtl.Add (a, pick_width w)
      | 1 -> Rtl.Sub (a, pick_width w)
      | 2 when 2 * w <= 10 -> Rtl.Mult (a, a)
      | 2 -> Rtl.Bit_and (a, pick_width w)
      | 3 -> Rtl.Bit_or (a, pick_width w)
      | 4 -> Rtl.Bit_xor (a, pick_width w)
      | 5 -> Rtl.Bit_not a
      | 6 -> Rtl.Mux (pick_width 1, a, pick_width w)
      | 7 -> Rtl.Eq (a, pick_width w)
      | 8 -> Rtl.Lt (a, pick_width w)
      | _ ->
        let b = pick () in
        Rtl.Concat (a, b)
    in
    let width =
      match op with
      | Rtl.Mult _ -> 2 * w
      | Rtl.Eq _ | Rtl.Lt _ -> 1
      | Rtl.Concat (x, y) -> width_of x + width_of y
      | Rtl.Add _ | Rtl.Sub _ | Rtl.Bit_and _ | Rtl.Bit_or _ | Rtl.Bit_xor _
      | Rtl.Bit_not _ | Rtl.Mux _ -> w
      | Rtl.Slice _ | Rtl.Table _ -> w
    in
    if width <= 12 then add (Rtl.add_op d ~width op)
  done;
  List.iter
    (fun r -> Rtl.connect_register d r ~d:(pick_width (width_of r)))
    regs;
  Rtl.mark_output d "out0" (pick ());
  Rtl.mark_output d "out1" (pick_width 1);
  d

let random_stimulus rng design =
  List.map
    (fun (s : Rtl.signal) -> (s.Rtl.name, Rng.int rng (1 lsl min s.Rtl.width 12)))
    (Rtl.inputs design)

(* Whole-flow equivalence: RTL simulator vs fabric emulation of the mapped,
   scheduled, clustered design, at a random folding level. *)
let full_chain_prop =
  QCheck.Test.make ~name:"random designs: RTL == folded fabric execution"
    ~count:25
    QCheck.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, level) ->
      QCheck.assume (level >= 1 && seed >= 0);
      let design = random_design seed in
      let arch = Arch.unbounded_k in
      let p = Mapper.prepare design in
      match Mapper.plan_level p ~arch ~level with
      | exception Sched.Infeasible _ -> true (* level too shallow: fine *)
      | plan ->
        let cl = Cluster.pack plan ~arch in
        Cluster.validate cl plan;
        let emu = Emulator.create design plan cl in
        let sim = Rtl.sim_create design in
        let rng = Rng.create (seed + 7919) in
        let ok = ref true in
        for _ = 1 to 25 do
          let stimulus = random_stimulus rng design in
          let expected = Rtl.sim_cycle sim stimulus in
          let got = Emulator.macro_cycle emu stimulus in
          List.iter
            (fun (name, v) ->
              match List.assoc_opt name got with
              | Some g -> if g <> v then ok := false
              | None -> ok := false)
            expected
        done;
        !ok)

(* Random designs through place & route: the router must converge (with
   channel widening if needed) and produce a legal routing. *)
let physical_prop =
  QCheck.Test.make ~name:"random designs: place & route legal" ~count:10
    QCheck.(int_range 0 2000)
    (fun seed ->
      QCheck.assume (seed >= 0);
      let design = random_design seed in
      let arch = Arch.unbounded_k in
      let p = Mapper.prepare design in
      match Mapper.plan_level p ~arch ~level:1 with
      | exception Sched.Infeasible _ -> true
      | plan ->
        let cl = Cluster.pack plan ~arch in
        let place = Nanomap_place.Place.place ~effort:`Fast cl in
        Nanomap_place.Place.validate place cl;
        let r, _ = Nanomap_route.Router.route_adaptive place cl plan in
        if r.Nanomap_route.Router.success then begin
          Nanomap_route.Router.validate r;
          true
        end
        else false)

(* The two router algorithms are different search strategies over the same
   contract: both must terminate with a legal routing of the same nets, and
   the incremental variant (A* + partial rip-up) must never end more
   congested than the full re-route it replaces. *)
let router_differential_prop =
  QCheck.Test.make ~name:"router: incremental agrees with full" ~count:8
    QCheck.(int_range 0 1500)
    (fun seed ->
      QCheck.assume (seed >= 0);
      let design = random_design seed in
      let arch = Arch.unbounded_k in
      let p = Mapper.prepare design in
      match Mapper.plan_level p ~arch ~level:1 with
      | exception Sched.Infeasible _ -> true
      | plan ->
        let cl = Cluster.pack plan ~arch in
        let place = Nanomap_place.Place.place ~effort:`Fast cl in
        let module R = Nanomap_route.Router in
        let full, _ = R.route_adaptive ~alg:R.Full place cl plan in
        let inc, _ = R.route_adaptive ~alg:R.Incremental place cl plan in
        if not (full.R.success && inc.R.success) then false
        else begin
          R.validate full;
          R.validate inc;
          inc.R.overused <= full.R.overused
          && full.R.total_nets = inc.R.total_nets
          && List.length full.R.routed = List.length inc.R.routed
        end)

(* Totality of the guarded flow: run_result must never raise — every
   failure (infeasible level, budget overrun, unroutable fabric) comes back
   as a structured diagnostic — and any Ok report must satisfy every
   Full-level inter-stage checker after the fact. *)
let flow_result_total_prop =
  QCheck.Test.make ~name:"flow: run_result is total, Ok passes all checkers"
    ~count:8
    QCheck.(pair (int_range 0 1500) (int_range 1 4))
    (fun (seed, level) ->
      QCheck.assume (level >= 1 && seed >= 0);
      let design = random_design seed in
      let options =
        { Flow.default_options with
          Flow.objective = Flow.Fixed_level level;
          check_level = Check.Full;
          seed = seed + 1 }
      in
      match Flow.run_result ~options ~arch:Arch.unbounded_k design with
      | exception e ->
        QCheck.Test.fail_reportf "run_result raised %s" (Printexc.to_string e)
      | Error d ->
        (* a well-formed diagnostic names the stage and carries a code *)
        d.Diag.stage <> "" && d.Diag.code <> ""
      | Ok r ->
        (match Flow.validate_report ~level:Check.Full r with
         | Ok () -> true
         | Error d ->
           QCheck.Test.fail_reportf "Ok report rejected by oracle: %s"
             (Diag.to_string d)))

(* ------------------------------------------- partition invariants *)

let tag_netlist nl =
  { Decompose.gates = nl;
    tags = Array.make (Gate_netlist.size nl) (-1);
    input_origins =
      List.mapi (fun i (_, gid) -> (gid, Lut_network.Pi_bit (i, 0))) (Gate_netlist.inputs nl);
    output_targets =
      List.map (fun (n, gid) -> (Lut_network.Po_target n, gid)) (Gate_netlist.outputs nl) }

let random_lut_network seed =
  let rng = Rng.create seed in
  let nl =
    Gen.random_layered rng ~num_inputs:(4 + Rng.int rng 5)
      ~layers:(3 + Rng.int rng 8)
      ~layer_width:(4 + Rng.int rng 10)
      ~num_outputs:(2 + Rng.int rng 4)
  in
  Flowmap.map ~k:4 (Simplify.run (tag_netlist nl))

(* Any topological assignment respecting the partition's strict and weak
   edges keeps each folding cycle at most [level] LUT levels deep. We check
   the structural invariant directly: within a band, chains are <= level;
   across bands, edges go strictly forward. *)
let partition_invariants_prop =
  QCheck.Test.make ~name:"partition bands: in-band chains <= level, bands ordered"
    ~count:40
    QCheck.(pair (int_range 0 5000) (int_range 1 5))
    (fun (seed, level) ->
      QCheck.assume (level >= 1 && seed >= 0);
      let network = random_lut_network seed in
      let part = Partition.partition network ~level in
      Partition.validate part;
      (* in-band chain length per LUT via longest path within its band *)
      let band_of l =
        let u = part.Partition.unit_of_lut.(l) in
        if u < 0 then -1 else part.Partition.units.(u).Partition.band
      in
      let chain = Array.make (Lut_network.size network) 0 in
      let ok = ref true in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let b = band_of l in
            let longest =
              Array.fold_left
                (fun acc f -> if band_of f = b then max acc chain.(f) else acc)
                0 fanins
            in
            chain.(l) <- longest + 1;
            if chain.(l) > level then ok := false;
            Array.iter
              (fun f ->
                match Lut_network.node network f with
                | Lut_network.Lut _ -> if band_of f > b then ok := false
                | Lut_network.Input _ -> ())
              fanins)
        network;
      (* number of bands is exactly ceil(depth / level) *)
      let depth = Lut_network.depth network in
      !ok && part.Partition.num_bands = max 1 ((depth + level - 1) / level))

(* ------------------------------------------- scheduling invariants *)

(* FDS optimizes expected concurrency, not the exact LE ceiling; on tiny
   graphs the storage it introduces can cost an LE or two relative to ASAP.
   The property is that it stays valid and within a small slack of ASAP. *)
let fds_props =
  QCheck.Test.make ~name:"FDS: valid schedule, close to or better than ASAP" ~count:40
    QCheck.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, level) ->
      QCheck.assume (level >= 1 && seed >= 0);
      let network = random_lut_network seed in
      let part = Partition.partition network ~level in
      let stages = Partition.critical_path_units part + Rng.int (Rng.create seed) 3 in
      match Sched.problem network part ~stages ~base_ff_bits:10 with
      | exception Sched.Infeasible _ -> true
      | prob ->
        let arch = Arch.default in
        let fds = Fds.schedule prob ~arch in
        Sched.check_schedule prob fds;
        let asap = Fds.asap_schedule prob in
        Sched.check_schedule prob asap;
        let fds_les = Sched.les_needed prob ~arch fds in
        let asap_les = Sched.les_needed prob ~arch asap in
        fds_les <= max (asap_les + 2) (asap_les * 6 / 5))

let lut_dg_conservation_prop =
  QCheck.Test.make ~name:"LUT DG mass equals total LUT count" ~count:40
    QCheck.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, level) ->
      QCheck.assume (level >= 1 && seed >= 0);
      let network = random_lut_network seed in
      let part = Partition.partition network ~level in
      let stages = Partition.critical_path_units part + 2 in
      match Sched.problem network part ~stages ~base_ff_bits:0 with
      | exception Sched.Infeasible _ -> true
      | prob ->
        let fr = Sched.frames prob ~fixed:(Array.make (Array.length prob.Sched.weights) None) in
        let dg = Sched.lut_dg prob fr in
        let mass = Array.fold_left ( +. ) 0.0 dg in
        Float.abs (mass -. float_of_int (Lut_network.num_luts network)) < 1e-6)

(* ------------------------------------------- simplify invariants *)

let simplify_idempotent_prop =
  QCheck.Test.make ~name:"simplify is idempotent on netlist size" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      QCheck.assume (seed >= 0);
      let rng = Rng.create seed in
      let nl =
        Gen.random_layered rng ~num_inputs:6 ~layers:5 ~layer_width:8 ~num_outputs:4
      in
      let once = Simplify.run (tag_netlist nl) in
      let twice = Simplify.run once in
      Gate_netlist.size twice.Decompose.gates = Gate_netlist.size once.Decompose.gates)

(* Simplify rewrites into the AND/OR/XOR/NOT basis, so each NAND/NOR/XNOR
   can cost one extra inverter (absorbed for free by FlowMap later); that is
   the only way the gate count can grow. *)
let simplify_bounded_growth_prop =
  QCheck.Test.make ~name:"simplify growth bounded by inverting-gate count" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      QCheck.assume (seed >= 0);
      let rng = Rng.create seed in
      let nl =
        Gen.random_layered rng ~num_inputs:5 ~layers:6 ~layer_width:9 ~num_outputs:3
      in
      let inverting =
        let stats = Gate_netlist.stats nl in
        let get k = Option.value ~default:0 (List.assoc_opt k stats) in
        get "nand2" + get "nor2" + get "xnor2" + get "not"
      in
      let simplified = Simplify.run (tag_netlist nl) in
      Gate_netlist.num_gates simplified.Decompose.gates
      <= Gate_netlist.num_gates nl + inverting)

(* ------------------------------------------- arithmetic generators *)

let adder_random_prop =
  QCheck.Test.make ~name:"carry-select adder matches + on random widths" ~count:60
    QCheck.(triple (int_range 2 10) (int_range 0 1023) (int_range 0 1023))
    (fun (w, a0, b0) ->
      QCheck.assume (w >= 2 && a0 >= 0 && b0 >= 0);
      let a0 = a0 land ((1 lsl w) - 1) and b0 = b0 land ((1 lsl w) - 1) in
      let t = Gate_netlist.create () in
      let a = Gen.input_bus t "a" w in
      let b = Gen.input_bus t "b" w in
      let sums, cout = Gen.carry_select_adder ~block:3 t a b in
      let bits v width = Array.init width (fun i -> v land (1 lsl i) <> 0) in
      let values = Gate_netlist.simulate t (Array.append (bits a0 w) (bits b0 w)) in
      let got =
        Array.to_list sums
        |> List.mapi (fun i id -> if values.(id) then 1 lsl i else 0)
        |> List.fold_left ( + ) 0
      in
      let carry = if values.(cout) then 1 lsl w else 0 in
      got + carry = a0 + b0)

let multiplier_random_prop =
  QCheck.Test.make ~name:"wallace multiplier matches * on random widths" ~count:60
    QCheck.(triple (int_range 2 7) (int_range 0 127) (int_range 0 127))
    (fun (w, a0, b0) ->
      QCheck.assume (w >= 2 && a0 >= 0 && b0 >= 0);
      let a0 = a0 land ((1 lsl w) - 1) and b0 = b0 land ((1 lsl w) - 1) in
      let t = Gate_netlist.create () in
      let a = Gen.input_bus t "a" w in
      let b = Gen.input_bus t "b" w in
      let prod = Gen.wallace_multiplier t a b in
      let bits v width = Array.init width (fun i -> v land (1 lsl i) <> 0) in
      let values = Gate_netlist.simulate t (Array.append (bits a0 w) (bits b0 w)) in
      let got =
        Array.to_list prod
        |> List.mapi (fun i id -> if values.(id) then 1 lsl i else 0)
        |> List.fold_left ( + ) 0
      in
      got = a0 * b0)

(* ------------------------------------------- RTL sim vs random design *)

let rtl_design_valid_prop =
  QCheck.Test.make ~name:"random designs validate and simulate" ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      QCheck.assume (seed >= 0);
      let design = random_design seed in
      Rtl.validate design;
      let sim = Rtl.sim_create design in
      let rng = Rng.create seed in
      for _ = 1 to 10 do
        ignore (Rtl.sim_cycle sim (random_stimulus rng design))
      done;
      true)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [ ("full-chain", [ to_alco full_chain_prop ]);
      ( "physical",
        [ to_alco physical_prop; to_alco router_differential_prop;
          to_alco flow_result_total_prop ] );
      ( "partition",
        [ to_alco partition_invariants_prop ] );
      ("scheduling", [ to_alco fds_props; to_alco lut_dg_conservation_prop ]);
      ( "simplify",
        [ to_alco simplify_idempotent_prop; to_alco simplify_bounded_growth_prop ] );
      ( "arithmetic",
        [ to_alco adder_random_prop; to_alco multiplier_random_prop ] );
      ("rtl", [ to_alco rtl_design_valid_prop ]) ]
