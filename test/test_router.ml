(* Router correctness harness: heap ordering invariants, generation-stamp
   scratch semantics, A* lookahead admissibility on hand-built and real
   routing graphs, deterministic net ordering, full-vs-incremental
   agreement, and the golden routed-result regression corpus.

   Golden files live in test/golden/ and are compared byte-for-byte; to
   refresh them after an intentional router change run `make regen-golden`
   (it re-runs just this suite with NANOMAP_REGEN_GOLDEN pointing at the
   source tree). *)

module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Rr_graph = Nanomap_route.Rr_graph
module Router = Nanomap_route.Router
module Circuits = Nanomap_circuits.Circuits
module Min_heap = Nanomap_util.Min_heap
module Rng = Nanomap_util.Rng

let check = Alcotest.check

(* --- min-heap --- *)

let test_heap_ordering () =
  let h = Min_heap.create ~capacity:2 () in
  let rng = Rng.create 42 in
  let n = 500 in
  for i = 0 to n - 1 do
    Min_heap.push h (float_of_int (Rng.int rng 10_000) /. 7.0) i
  done;
  check Alcotest.int "length" n (Min_heap.length h);
  let last = ref neg_infinity in
  let popped = ref 0 in
  let seen = Array.make n false in
  let continue_ = ref true in
  while !continue_ do
    match Min_heap.pop h with
    | None -> continue_ := false
    | Some (k, v) ->
      check Alcotest.bool "keys nondecreasing" true (k >= !last);
      last := k;
      seen.(v) <- true;
      incr popped
  done;
  check Alcotest.int "all entries popped" n !popped;
  Array.iteri
    (fun i s -> check Alcotest.bool (Printf.sprintf "payload %d seen" i) true s)
    seen

let test_heap_interleaved () =
  let h = Min_heap.create () in
  Min_heap.push h 3.0 3;
  Min_heap.push h 1.0 1;
  check Alcotest.(option (pair (float 1e-9) int)) "min first" (Some (1.0, 1))
    (Min_heap.pop h);
  Min_heap.push h 2.0 2;
  Min_heap.push h 0.5 0;
  check Alcotest.(option (pair (float 1e-9) int)) "new min" (Some (0.5, 0))
    (Min_heap.pop h);
  check Alcotest.int "two left" 2 (Min_heap.length h);
  Min_heap.clear h;
  check Alcotest.bool "cleared" true (Min_heap.is_empty h);
  check Alcotest.(option (pair (float 1e-9) int)) "empty pop" None (Min_heap.pop h);
  check Alcotest.bool "pop_unsafe raises" true
    (match Min_heap.pop_unsafe h with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* duplicate keys must all surface, in some order, without loss *)
let test_heap_duplicates () =
  let h = Min_heap.create () in
  List.iter (fun v -> Min_heap.push h 1.0 v) [ 10; 11; 12 ];
  Min_heap.push h 0.0 0;
  let order = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Min_heap.pop h with
    | None -> continue_ := false
    | Some (_, v) -> order := v :: !order
  done;
  let popped = List.rev !order in
  check Alcotest.int "four pops" 4 (List.length popped);
  check Alcotest.int "strict min first" 0 (List.hd popped);
  check Alcotest.bool "duplicates preserved" true
    (List.sort compare (List.tl popped) = [ 10; 11; 12 ])

(* --- generation-stamped scratch --- *)

let test_scratch_reset () =
  let s = Router.Scratch.create 8 in
  check Alcotest.int "size" 8 (Router.Scratch.size s);
  for v = 0 to 7 do
    check (Alcotest.float 0.0) "fresh dist" infinity (Router.Scratch.dist s v);
    check Alcotest.int "fresh prev" (-1) (Router.Scratch.prev s v)
  done;
  Router.Scratch.begin_search s;
  Router.Scratch.set s 3 ~dist:1.5 ~prev:2;
  Router.Scratch.set s 5 ~dist:0.25 ~prev:3;
  check (Alcotest.float 1e-12) "set dist" 1.5 (Router.Scratch.dist s 3);
  check Alcotest.int "set prev" 2 (Router.Scratch.prev s 3);
  check (Alcotest.float 0.0) "untouched stays inf" infinity (Router.Scratch.dist s 4);
  (* a new search must see pristine state without any refill *)
  Router.Scratch.begin_search s;
  for v = 0 to 7 do
    check (Alcotest.float 0.0) "reset dist" infinity (Router.Scratch.dist s v);
    check Alcotest.int "reset prev" (-1) (Router.Scratch.prev s v)
  done;
  (* stale cells from an old generation are invisible but overwritable *)
  Router.Scratch.set s 3 ~dist:9.0 ~prev:7;
  check (Alcotest.float 1e-12) "rewrite after reset" 9.0 (Router.Scratch.dist s 3);
  check Alcotest.int "rewrite prev" 7 (Router.Scratch.prev s 3)

let test_scratch_many_generations () =
  let s = Router.Scratch.create 4 in
  for round = 1 to 1000 do
    Router.Scratch.begin_search s;
    let v = round mod 4 in
    check (Alcotest.float 0.0) "clean each round" infinity (Router.Scratch.dist s v);
    Router.Scratch.set s v ~dist:(float_of_int round) ~prev:round;
    check (Alcotest.float 1e-12) "written" (float_of_int round)
      (Router.Scratch.dist s v)
  done

(* --- A* lookahead admissibility --- *)

(* Reference forward Dijkstra: cheapest sum of per-node entry costs from
   [src] to every node, where entering node [v] costs [cost v]. Mirrors
   the router's relaxation exactly. *)
let ref_dijkstra g ~cost src =
  let n = g.Rr_graph.num_nodes in
  let dist = Array.make n infinity in
  let h = Min_heap.create () in
  dist.(src) <- 0.0;
  Min_heap.push h 0.0 src;
  let continue_ = ref true in
  while !continue_ do
    match Min_heap.pop h with
    | None -> continue_ := false
    | Some (d, u) ->
      if d <= dist.(u) then
        List.iter
          (fun v ->
            let nd = d +. cost v in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              Min_heap.push h nd v
            end)
          g.Rr_graph.adj.(u)
  done;
  dist

(* hand-built diamond with a dead-end branch:
     src0 -> len1 -> len1 -> sink0   (cheap two-hop path)
     src0 -> global -> sink0        (expensive shortcut)
     src0 -> direct dead-end        (unreachable from the sink) *)
let hand_graph () =
  Rr_graph.make
    ~kind:
      [| Rr_graph.Src 0;
         Rr_graph.Wire Rr_graph.Len1;
         Rr_graph.Wire Rr_graph.Len1;
         Rr_graph.Wire Rr_graph.Global;
         Rr_graph.Sink 0;
         Rr_graph.Wire Rr_graph.Direct |]
    ~delay:[| 0.0; 0.35; 0.35; 0.9; 0.0; 0.25 |]
    ~adj:[| [ 1; 3; 5 ]; [ 2 ]; [ 4 ]; [ 4 ]; []; [] |]
    ~src_of_smb:[| 0 |] ~sink_of_smb:[| 4 |] ~src_of_pad:[||] ~sink_of_pad:[||]
    ()

let check_admissible g sink =
  let lb = Rr_graph.lookahead g sink in
  (* uncongested: the lookahead is the exact remaining cost, so for every
     node u reachable to the sink, dist(src->u) + lb(u) >= dist(src->sink),
     and lb along the base-cost metric never overestimates. Verify against
     a reference Dijkstra from each source. *)
  let base v = Rr_graph.base_cost g v in
  Array.iter
    (fun src ->
      let d = ref_dijkstra g ~cost:base src in
      for u = 0 to g.Rr_graph.num_nodes - 1 do
        if d.(u) < infinity && d.(sink) < infinity then
          (* admissibility: going through u cannot beat the true optimum,
             i.e. lb(u) <= true remaining cost whenever u lies on a path *)
          check Alcotest.bool
            (Printf.sprintf "lb consistent at node %d" u)
            true
            (lb.(u) = infinity || d.(u) +. lb.(u) >= d.(sink) -. 1e-9)
      done;
      (* exactness at the source: A* from src sees f = true optimum *)
      if d.(sink) < infinity then
        check (Alcotest.float 1e-9) "lookahead exact at source" d.(sink) lb.(src))
    g.Rr_graph.src_of_smb;
  (* congestion only raises costs, so lb stays a lower bound on the
     remaining cost under any history/present multipliers >= 1; sample
     starting nodes to keep the quadratic reference affordable *)
  let rng = Rng.create (17 * sink + 3) in
  let mult =
    Array.init g.Rr_graph.num_nodes (fun _ ->
        1.0 +. (float_of_int (Rng.int rng 400) /. 100.0))
  in
  let congested v = base v *. mult.(v) in
  let stride = max 1 (g.Rr_graph.num_nodes / 40) in
  let u = ref 0 in
  while !u < g.Rr_graph.num_nodes do
    if lb.(!u) < infinity then begin
      let du = ref_dijkstra g ~cost:congested !u in
      if du.(sink) < infinity then
        check Alcotest.bool
          (Printf.sprintf "admissible under congestion at node %d" !u)
          true
          (lb.(!u) <= du.(sink) +. 1e-9)
    end;
    u := !u + stride
  done

let test_lookahead_hand_graph () =
  let g = hand_graph () in
  let lb = Rr_graph.lookahead g 4 in
  check (Alcotest.float 1e-9) "sink lb is 0" 0.0 lb.(4);
  check (Alcotest.float 1e-9) "last hop lb" 0.01 lb.(2);
  check (Alcotest.float 1e-9) "global shortcut lb" 0.01 lb.(3);
  check (Alcotest.float 1e-9) "two-hop path lb" 0.37 lb.(1);
  (* src: min(0.36 + 0.37 via len1, 0.91 + 0.01 via global) *)
  check (Alcotest.float 1e-9) "src takes cheap path" 0.73 lb.(0);
  check (Alcotest.float 0.0) "dead-end is infinity" infinity lb.(5);
  check_admissible g 4;
  (* the cache returns the same physical array *)
  check Alcotest.bool "cached" true (Rr_graph.lookahead g 4 == lb)

let small_fixture ?(seed = 7) level (b : Circuits.benchmark) =
  let p = Mapper.prepare b.Circuits.design in
  let arch = Arch.unbounded_k in
  let plan =
    if level = 0 then Mapper.no_folding p ~arch else Mapper.plan_level p ~arch ~level
  in
  let cl = Cluster.pack plan ~arch in
  let place = Place.place ~seed ~effort:`Fast cl in
  (plan, cl, place)

let test_lookahead_real_graph () =
  let _, _, place = small_fixture 1 (Circuits.ex1_small ()) in
  let g = Rr_graph.build ~arch:Arch.unbounded_k place in
  check_admissible g g.Rr_graph.sink_of_smb.(0);
  if Array.length g.Rr_graph.sink_of_pad > 0 then
    check_admissible g g.Rr_graph.sink_of_pad.(0)

(* --- deterministic net ordering --- *)

let test_group_by_slot_sorted_and_stable () =
  let _, cl, _ = small_fixture 1 (Circuits.ex1_small ()) in
  let slots = Router.group_by_slot cl.Cluster.nets in
  let keys = List.map fst slots in
  check Alcotest.bool "slot keys strictly ascending" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < List.length keys - 1) keys)
       (List.tl keys));
  (* nets within a slot keep their cluster order (stable grouping) *)
  List.iter
    (fun (key, nets) ->
      let expected =
        List.filter
          (fun (n : Cluster.net) -> (n.Cluster.plane, n.Cluster.cycle) = key)
          cl.Cluster.nets
      in
      check Alcotest.bool "slot preserves input order" true (nets = expected))
    slots;
  (* grouping loses nothing *)
  check Alcotest.int "all nets grouped" (List.length cl.Cluster.nets)
    (List.fold_left (fun acc (_, ns) -> acc + List.length ns) 0 slots)

let test_route_deterministic () =
  let plan, cl, place = small_fixture 1 (Circuits.ex1_small ()) in
  let tree_sets (r : Router.result) =
    List.map (fun (rn : Router.routed_net) -> List.sort compare rn.Router.tree) r.Router.routed
  in
  List.iter
    (fun alg ->
      let r1, f1 = Router.route_adaptive ~alg place cl plan in
      let r2, f2 = Router.route_adaptive ~alg place cl plan in
      check Alcotest.int "same channel factor" f1 f2;
      check Alcotest.bool "identical trees" true (tree_sets r1 = tree_sets r2))
    [ Router.Full; Router.Incremental ]

(* --- full vs incremental --- *)

let test_algorithms_agree () =
  List.iter
    (fun level ->
      let plan, cl, place = small_fixture level (Circuits.ex1_small ()) in
      let full, _ = Router.route_adaptive ~alg:Router.Full place cl plan in
      let inc, _ = Router.route_adaptive ~alg:Router.Incremental place cl plan in
      check Alcotest.bool "full legal" true full.Router.success;
      check Alcotest.bool "incremental legal" true inc.Router.success;
      Router.validate full;
      Router.validate inc;
      check Alcotest.int "full zero overuse" 0 full.Router.overused;
      check Alcotest.int "incremental zero overuse" 0 inc.Router.overused;
      check Alcotest.int "same net count" full.Router.total_nets inc.Router.total_nets)
    [ 0; 1; 2 ]

(* --- golden corpus --- *)

let golden_cases () =
  [ ("ex1s-l0", Circuits.ex1_small (), 0);
    ("ex1s-l1", Circuits.ex1_small (), 1);
    ("ex1s-l2", Circuits.ex1_small (), 2);
    ("ex1-l1", Circuits.ex1 (), 1) ]

let string_of_value = function
  | Cluster.V_lut (p, l) -> Printf.sprintf "lut:%d:%d" p l
  | Cluster.V_state (r, b) -> Printf.sprintf "state:%d:%d" r b
  | Cluster.V_pi (s, b) -> Printf.sprintf "pi:%d:%d" s b

let string_of_ep = function
  | Cluster.At_smb s -> "smb:" ^ string_of_int s
  | Cluster.At_pad p -> "pad:" ^ string_of_int p

let serialize_routing alg_name (r : Router.result) =
  List.map
    (fun (rn : Router.routed_net) ->
      let net = rn.Router.net in
      Printf.sprintf "%s plane=%d cycle=%d value=%s driver=%s sinks=%s wires=%s"
        alg_name net.Cluster.plane net.Cluster.cycle
        (string_of_value net.Cluster.value)
        (string_of_ep net.Cluster.driver)
        (String.concat "," (List.sort compare (List.map string_of_ep net.Cluster.sinks)))
        (String.concat ","
           (List.map string_of_int (List.sort compare rn.Router.tree))))
    r.Router.routed

let golden_text (b : Circuits.benchmark) level =
  let plan, cl, place = small_fixture level b in
  let lines =
    List.concat_map
      (fun (alg, alg_name) ->
        let r, factor = Router.route_adaptive ~alg place cl plan in
        check Alcotest.bool (alg_name ^ " legal") true r.Router.success;
        Router.validate r;
        Printf.sprintf "# alg=%s channel_factor=%d nets=%d wirelength=%d"
          alg_name factor r.Router.total_nets r.Router.wirelength
        :: List.sort compare (serialize_routing alg_name r))
      [ (Router.Full, "full"); (Router.Incremental, "incremental") ]
  in
  String.concat "\n" lines ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_golden name b level () =
  let got = golden_text b level in
  match Sys.getenv_opt "NANOMAP_REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir (name ^ ".txt") in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Printf.printf "regenerated %s\n%!" path
  | None ->
    let path = Filename.concat "golden" (name ^ ".txt") in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf "missing golden file %s — run `make regen-golden`" path);
    let want = read_file path in
    if got <> want then begin
      let got_lines = String.split_on_char '\n' got in
      let want_lines = String.split_on_char '\n' want in
      let missing =
        List.filter (fun l -> not (List.mem l got_lines)) want_lines
      and extra =
        List.filter (fun l -> not (List.mem l want_lines)) got_lines
      in
      Alcotest.fail
        (Printf.sprintf
           "routed result for %s differs from golden (%d line(s) missing, %d \
            unexpected); first diff:\n-%s\n+%s\nrun `make regen-golden` if the \
            change is intentional"
           name (List.length missing) (List.length extra)
           (match missing with l :: _ -> l | [] -> "")
           (match extra with l :: _ -> l | [] -> ""))
    end

let () =
  Alcotest.run "router"
    [ ( "heap",
        [ Alcotest.test_case "ordering invariant" `Quick test_heap_ordering;
          Alcotest.test_case "interleaved ops" `Quick test_heap_interleaved;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates ] );
      ( "scratch",
        [ Alcotest.test_case "generation reset" `Quick test_scratch_reset;
          Alcotest.test_case "many generations" `Quick test_scratch_many_generations ] );
      ( "lookahead",
        [ Alcotest.test_case "hand-built graph" `Quick test_lookahead_hand_graph;
          Alcotest.test_case "real graph" `Quick test_lookahead_real_graph ] );
      ( "determinism",
        [ Alcotest.test_case "group_by_slot" `Quick test_group_by_slot_sorted_and_stable;
          Alcotest.test_case "repeat routes" `Quick test_route_deterministic ] );
      ( "differential",
        [ Alcotest.test_case "full vs incremental" `Quick test_algorithms_agree ] );
      ( "golden",
        List.map
          (fun (name, b, level) ->
            Alcotest.test_case name `Quick (test_golden name b level))
          (golden_cases ()) ) ]
