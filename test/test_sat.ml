(* Property battery for the embedded CDCL solver: unit coverage of the
   API surface, DIMACS interchange, and large QCheck campaigns
   cross-checking the solver against a brute-force enumerator. *)

open Nanomap_util

(* ---- helpers --------------------------------------------------------- *)

(* A CNF on this boundary is DIMACS-style: vars 1..nv, clause = list of
   nonzero ints. *)

let solver_of nv cs =
  let s = Sat.create ~nvars:nv () in
  List.iter (fun c -> Sat.Dimacs.add s c) cs;
  s

(* Exhaustive satisfiability check; assignment bit i = var (i+1) true. *)
let brute_sat nv clauses =
  let masks =
    List.map
      (fun c ->
        List.fold_left
          (fun (p, n) l ->
            if l > 0 then (p lor (1 lsl (l - 1)), n)
            else (p, n lor (1 lsl (-l - 1))))
          (0, 0) c)
      clauses
  in
  let sat = ref false in
  let a = ref 0 in
  let total = 1 lsl nv in
  while (not !sat) && !a < total do
    if
      List.for_all
        (fun (p, n) -> !a land p <> 0 || lnot !a land n <> 0)
        masks
    then sat := true
    else incr a
  done;
  !sat

let model_satisfies m clauses =
  List.for_all
    (fun c ->
      List.exists
        (fun l ->
          let v = abs l - 1 in
          if l > 0 then m.(v) else not m.(v))
        c)
    clauses

(* np pigeons into nh holes: unsatisfiable iff np > nh *)
let pigeonhole np nh =
  let s = Sat.create ~nvars:(np * nh) () in
  let v p h = (p * nh) + h + 1 in
  for p = 0 to np - 1 do
    Sat.Dimacs.add s (List.init nh (fun h -> v p h))
  done;
  for h = 0 to nh - 1 do
    for p = 0 to np - 1 do
      for p' = p + 1 to np - 1 do
        Sat.Dimacs.add s [ -v p h; -v p' h ]
      done
    done
  done;
  s

let result_pp = function
  | Sat.Sat -> "Sat"
  | Sat.Unsat -> "Unsat"
  | Sat.Unknown -> "Unknown"

let result_t = Alcotest.testable (Fmt.of_to_string result_pp) ( = )

let check_result = Alcotest.check result_t

(* ---- unit tests ------------------------------------------------------- *)

let test_lit_encoding () =
  Alcotest.(check int) "pos 3" 6 (Sat.pos 3);
  Alcotest.(check int) "neg 3" 7 (Sat.neg 3);
  Alcotest.(check int) "negate pos" (Sat.neg 5) (Sat.negate (Sat.pos 5));
  Alcotest.(check int) "negate involutive" (Sat.pos 5)
    (Sat.negate (Sat.negate (Sat.pos 5)));
  Alcotest.(check int) "var_of" 9 (Sat.var_of (Sat.neg 9));
  Alcotest.(check bool) "sign pos" true (Sat.sign (Sat.pos 0));
  Alcotest.(check bool) "sign neg" false (Sat.sign (Sat.neg 0))

let test_luby () =
  let expect = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  Alcotest.(check (list int)) "luby prefix" expect (List.init 15 Sat.luby)

let test_trivial () =
  let s = Sat.create () in
  check_result "empty problem" Sat.Sat (Sat.solve s);
  let s = solver_of 1 [ [ 1 ] ] in
  check_result "unit" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "unit value" true (Sat.value s 0);
  let s = solver_of 1 [ [ 1 ]; [ -1 ] ] in
  check_result "x and not x" Sat.Unsat (Sat.solve s);
  let s = solver_of 1 [ [] ] in
  check_result "empty clause" Sat.Unsat (Sat.solve s);
  let s = solver_of 1 [ [ 1; -1 ] ] in
  check_result "tautology alone" Sat.Sat (Sat.solve s);
  let s = solver_of 2 [ [ 1; 1; 2 ]; [ -1; -1 ] ] in
  check_result "duplicate literals" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "forced by dedup" false (Sat.value s 0)

let test_chained_implications () =
  (* x1 -> x2 -> ... -> x8, x1 asserted, x8 negated *)
  let n = 8 in
  let chain = List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]) in
  let s = solver_of n ([ [ 1 ] ] @ chain @ [ [ -n ] ]) in
  check_result "chain unsat" Sat.Unsat (Sat.solve s);
  let s = solver_of n ([ [ 1 ] ] @ chain) in
  check_result "chain sat" Sat.Sat (Sat.solve s);
  for v = 0 to n - 1 do
    Alcotest.(check bool) "all forced true" true (Sat.value s v)
  done

let test_pigeonhole () =
  check_result "php(4,3)" Sat.Unsat (Sat.solve (pigeonhole 4 3));
  check_result "php(5,4)" Sat.Unsat (Sat.solve (pigeonhole 5 4));
  let s = pigeonhole 4 4 in
  check_result "php(4,4)" Sat.Sat (Sat.solve s);
  let st = Sat.stats s in
  Alcotest.(check bool) "propagations counted" true (st.Sat.propagations > 0)

let test_assumptions () =
  let s = solver_of 2 [ [ 1; 2 ] ] in
  check_result "unsat under assumptions" Sat.Unsat
    (Sat.solve ~assumptions:[ Sat.neg 0; Sat.neg 1 ] s);
  check_result "still sat without" Sat.Sat (Sat.solve s);
  check_result "sat under one assumption" Sat.Sat
    (Sat.solve ~assumptions:[ Sat.neg 0 ] s);
  Alcotest.(check bool) "assumption respected" false (Sat.value s 0);
  Alcotest.(check bool) "clause satisfied" true (Sat.value s 1);
  (* assuming an already-implied literal goes through a dummy level *)
  let s = solver_of 2 [ [ 1 ]; [ -1; 2 ] ] in
  check_result "implied assumption" Sat.Sat
    (Sat.solve ~assumptions:[ Sat.pos 0; Sat.pos 1 ] s)

let test_budget_and_resume () =
  let s = pigeonhole 6 5 in
  check_result "tiny budget gives Unknown" Sat.Unknown
    (Sat.solve ~max_conflicts:5 s);
  (try
     ignore (Sat.model s);
     Alcotest.fail "model after Unknown should raise"
   with Invalid_argument _ -> ());
  (* the solver stays usable and finishes the proof when unconstrained *)
  check_result "resume to Unsat" Sat.Unsat (Sat.solve s);
  let st = Sat.stats s in
  Alcotest.(check bool) "conflicts counted" true (st.Sat.conflicts >= 5)

let test_incremental () =
  let s = solver_of 3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  check_result "first solve" Sat.Sat (Sat.solve s);
  Sat.Dimacs.add s [ -3 ];
  Sat.Dimacs.add s [ -2 ];
  check_result "after narrowing" Sat.Unsat (Sat.solve s);
  check_result "unsat is sticky" Sat.Unsat (Sat.solve s)

let test_model_errors () =
  let s = solver_of 1 [ [ 1 ]; [ -1 ] ] in
  check_result "unsat" Sat.Unsat (Sat.solve s);
  (try
     ignore (Sat.value s 0);
     Alcotest.fail "value after Unsat should raise"
   with Invalid_argument _ -> ());
  let s = solver_of 1 [ [ 1 ] ] in
  check_result "sat" Sat.Sat (Sat.solve s);
  try
    ignore (Sat.value s 7);
    Alcotest.fail "out-of-range value should raise"
  with Invalid_argument _ -> ()

let test_new_var_and_ranges () =
  let s = Sat.create ~nvars:2 () in
  Alcotest.(check int) "nvars" 2 (Sat.num_vars s);
  let v = Sat.new_var s in
  Alcotest.(check int) "new var index" 2 v;
  Alcotest.(check int) "nvars grown" 3 (Sat.num_vars s);
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.(check int) "clauses counted" 1 (Sat.num_clauses s);
  (try
     Sat.add_clause s [ Sat.pos 99 ];
     Alcotest.fail "out-of-range literal should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Sat.solve ~assumptions:[ Sat.pos 99 ] s);
    Alcotest.fail "out-of-range assumption should raise"
  with Invalid_argument _ -> ()

(* ---- DIMACS unit tests ------------------------------------------------ *)

let test_dimacs_parse () =
  let doc = "c a comment\np cnf 3 2\n1 -2 0\n c another\n2 3 0\n" in
  let nv, cs = Sat.Dimacs.parse doc in
  Alcotest.(check int) "nvars" 3 nv;
  Alcotest.(check (list (list int))) "clauses" [ [ 1; -2 ]; [ 2; 3 ] ] cs;
  (* clauses may span lines and share lines *)
  let nv, cs = Sat.Dimacs.parse "p cnf 2 2\n1\n-2 0 2 0" in
  Alcotest.(check int) "nvars multiline" 2 nv;
  Alcotest.(check (list (list int))) "multiline" [ [ 1; -2 ]; [ 2 ] ] cs

let test_dimacs_errors () =
  let expect_failure name doc =
    try
      ignore (Sat.Dimacs.parse doc);
      Alcotest.fail (name ^ ": expected Failure")
    with Failure _ -> ()
  in
  expect_failure "missing header" "1 2 0\n";
  expect_failure "malformed header" "p cnf x 2\n1 0\n2 0\n";
  expect_failure "duplicate header" "p cnf 1 1\np cnf 1 1\n1 0\n";
  expect_failure "literal out of range" "p cnf 2 1\n3 0\n";
  expect_failure "unterminated clause" "p cnf 2 1\n1 2\n";
  expect_failure "count mismatch" "p cnf 2 2\n1 0\n";
  expect_failure "garbage token" "p cnf 2 1\n1 q 0\n"

let test_dimacs_solver_roundtrip () =
  let doc = "p cnf 4 3\n1 2 0\n-1 3 0\n-3 -2 4 0\n" in
  let s = Sat.Dimacs.of_string doc in
  check_result "of_string solves" Sat.Sat (Sat.solve s);
  let nv, cs = Sat.Dimacs.parse (Sat.Dimacs.export s) in
  Alcotest.(check int) "export nvars" 4 nv;
  Alcotest.(check (list (list int)))
    "export clauses" [ [ 1; 2 ]; [ -1; 3 ]; [ -3; -2; 4 ] ] cs

(* ---- QCheck campaigns ------------------------------------------------- *)

let gen_cnf lo hi =
  QCheck.Gen.(
    int_range lo hi >>= fun nv ->
    int_range 1 (6 * nv) >>= fun nc ->
    let lit = map2 (fun v s -> if s then v else -v) (int_range 1 nv) bool in
    list_repeat nc (list_repeat 3 lit) >|= fun cs -> (nv, cs))

let print_cnf (nv, cs) = Sat.Dimacs.print ~nvars:nv cs

let arb_cnf lo hi = QCheck.make ~print:print_cnf (gen_cnf lo hi)

(* The headline acceptance gate: SAT/UNSAT agreement with exhaustive
   enumeration on >= 10k random 3-CNF instances, models re-checked by
   clause evaluation. *)
let prop_brute_force_agreement =
  QCheck.Test.make ~name:"solver agrees with brute force (10k random 3-CNF)"
    ~count:10_000 (arb_cnf 3 10) (fun (nv, cs) ->
      let s = solver_of nv cs in
      match Sat.solve s with
      | Sat.Sat -> brute_sat nv cs && model_satisfies (Sat.model s) cs
      | Sat.Unsat -> not (brute_sat nv cs)
      | Sat.Unknown -> false)

(* Larger instances (no enumeration): every Sat model must evaluate
   true under every clause; the solver must always decide. *)
let prop_models_valid =
  QCheck.Test.make ~name:"models satisfy every clause (larger instances)"
    ~count:1_500 (arb_cnf 12 20) (fun (nv, cs) ->
      let s = solver_of nv cs in
      match Sat.solve s with
      | Sat.Sat -> model_satisfies (Sat.model s) cs
      | Sat.Unsat -> true
      | Sat.Unknown -> false)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs print/parse round-trip" ~count:1_500
    (arb_cnf 1 16) (fun (nv, cs) ->
      Sat.Dimacs.parse (Sat.Dimacs.print ~nvars:nv cs) = (nv, cs))

(* Determinism: two fresh solvers on the same instance give identical
   results, models and statistics. *)
let prop_deterministic =
  QCheck.Test.make ~name:"solver is deterministic" ~count:1_000 (arb_cnf 3 14)
    (fun (nv, cs) ->
      let s1 = solver_of nv cs and s2 = solver_of nv cs in
      let r1 = Sat.solve s1 and r2 = Sat.solve s2 in
      r1 = r2
      && Sat.stats s1 = Sat.stats s2
      && (r1 <> Sat.Sat || Sat.model s1 = Sat.model s2))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_brute_force_agreement;
      prop_models_valid;
      prop_dimacs_roundtrip;
      prop_deterministic;
    ]

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "luby sequence" `Quick test_luby;
          Alcotest.test_case "trivial instances" `Quick test_trivial;
          Alcotest.test_case "implication chains" `Quick
            test_chained_implications;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "budget and resume" `Quick test_budget_and_resume;
          Alcotest.test_case "incremental solving" `Quick test_incremental;
          Alcotest.test_case "model access errors" `Quick test_model_errors;
          Alcotest.test_case "var allocation and ranges" `Quick
            test_new_var_and_ranges;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
          Alcotest.test_case "parse errors" `Quick test_dimacs_errors;
          Alcotest.test_case "solver round-trip" `Quick
            test_dimacs_solver_roundtrip;
        ] );
      ("properties", qcheck_tests);
    ]
