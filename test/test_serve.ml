(* The compile service: line framing, protocol rejections (each with its
   typed Diag code, daemon surviving), the batch engine's first-failure
   isolation, the stage-I/O codecs, and the content-addressed cache —
   differential matrix against cold compiles, key soundness under option
   and netlist mutations, determinism at -j1 vs -j4, LRU bound, disk
   tier, and the PR-4 oracle on a replayed cached bitstream. *)

module Rtl = Nanomap_rtl.Rtl
module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Router = Nanomap_route.Router
module Bitstream = Nanomap_bitstream.Bitstream
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Codec = Nanomap_flow.Codec
module Fault = Nanomap_flow.Fault
module Diag = Nanomap_util.Diag
module Cancel = Nanomap_util.Cancel
module Pool = Nanomap_util.Pool
module Json = Nanomap_util.Json
module Framing = Nanomap_util.Framing
module Hashing = Nanomap_util.Hashing
module Rng = Nanomap_util.Rng
module Circuits = Nanomap_circuits.Circuits
module Gen_rtl = Nanomap_verify.Gen_rtl
module Fuzz = Nanomap_verify.Fuzz
module Oracle = Nanomap_verify.Oracle
module Proto = Nanomap_serve.Proto
module Cache = Nanomap_serve.Cache
module Serve = Nanomap_serve.Serve

let check = Alcotest.check

let opts ?(objective = Flow.Fixed_level 1) ?(mapper = Mapper.Truth_table)
    ?(seed = 1) ?(physical = true) () =
  { Flow.default_options with
    Flow.objective; mapper; seed; physical;
    check_level = Check.Off }

let circuit name = (Circuits.by_name name).Circuits.design

let job ?(id = "j0") ?arch ?options ?deadline_ms design =
  { Proto.id;
    design = Proto.Rtl_text (Codec.rtl_to_string design);
    arch = (match arch with Some a -> a | None -> Arch.default);
    options = (match options with Some o -> o | None -> opts ());
    deadline_ms }

let with_engine ?jobs ?cache ?limits f =
  let eng = Serve.create_engine ?jobs ?cache ?limits () in
  Fun.protect ~finally:(fun () -> Serve.shutdown_engine eng) (fun () -> f eng)

let terminator = function
  | [] -> Alcotest.fail "empty response list"
  | rs -> List.nth rs (List.length rs - 1)

(* Proto.Result carries an inlined record, which cannot escape its
   constructor; mirror it in a nominal record for test plumbing. *)
type answer =
  { id : string; key : string; cached : bool; artifact : Codec.artifact }

let expect_result responses =
  match terminator responses with
  | Proto.Result { id; key; cached; artifact } -> { id; key; cached; artifact }
  | Proto.Error_resp { diag; _ } ->
    Alcotest.fail ("expected result, got error: " ^ Diag.to_string diag)
  | _ -> Alcotest.fail "expected result"

(* ------------------------------------------------------------- json *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("a", Json.Int 42); ("b", Json.Float 2.5); ("s", Json.String "x\"\n\t");
        ("n", Json.Null); ("l", Json.List [ Json.Bool true; Json.Int (-7) ]);
        ("o", Json.Obj [ ("nested", Json.Float 1e-9) ]) ]
  in
  let s = Json.to_string v in
  (match Json.parse s with
  | Ok v' -> check Alcotest.bool "tree round-trips" true (v = v')
  | Error e -> Alcotest.fail e);
  check Alcotest.string "stable printing" s
    (Json.to_string (Json.parse_exn (Json.to_string v)));
  (match Json.parse "{\"a\":1} trailing" with
  | Error e -> check Alcotest.bool "offset in error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Json.parse "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted");
  check (Alcotest.option Alcotest.int) "integral float as int" (Some 3)
    (Json.to_int (Json.Float 3.0))

(* ---------------------------------------------------------- framing *)

let test_splitter_chunks () =
  let sp = Framing.Splitter.create () in
  let frames = ref [] in
  List.iter
    (fun chunk -> frames := !frames @ Framing.Splitter.feed sp chunk)
    [ "{\"a\""; ":1}\r\n\n{\"b\""; ":2}\n{\"c\"" ];
  check Alcotest.int "two complete frames" 2 (List.length !frames);
  (match !frames with
  | [ Framing.Frame a; Framing.Frame b ] ->
    check Alcotest.string "crlf stripped" "{\"a\":1}" a;
    check Alcotest.string "second frame" "{\"b\":2}" b
  | _ -> Alcotest.fail "unexpected frames");
  check (Alcotest.option Alcotest.string) "partial line is truncated"
    (Some "{\"c\"") (Framing.Splitter.finish sp)

let test_splitter_oversized () =
  let sp = Framing.Splitter.create ~max_bytes:8 () in
  let frames = Framing.Splitter.feed sp "0123456789abcdef\nok\n" in
  (match frames with
  | [ Framing.Oversized n; Framing.Frame ok ] ->
    check Alcotest.bool "reported length past bound" true (n > 8);
    check Alcotest.string "stream resynchronizes" "ok" ok
  | _ -> Alcotest.fail "expected Oversized then Frame");
  check (Alcotest.option Alcotest.string) "nothing pending" None
    (Framing.Splitter.finish sp)

let test_splitter_edge_cases () =
  (* an oversized line split across chunk boundaries still resyncs *)
  let sp = Framing.Splitter.create ~max_bytes:8 () in
  let frames = ref [] in
  List.iter
    (fun chunk -> frames := !frames @ Framing.Splitter.feed sp chunk)
    [ "01234"; "5678"; "9abc"; "def\n"; "ok"; "\n" ];
  (match !frames with
  | [ Framing.Oversized n; Framing.Frame ok ] ->
    check Alcotest.bool "length past the bound" true (n > 8);
    check Alcotest.string "resync across chunks" "ok" ok
  | _ -> Alcotest.fail "expected Oversized then Frame");
  (* one byte at a time, CRLF line endings *)
  let sp = Framing.Splitter.create () in
  let frames = ref [] in
  String.iter
    (fun c -> frames := !frames @ Framing.Splitter.feed sp (String.make 1 c))
    "{\"a\":1}\r\n{\"b\":2}\n";
  (match !frames with
  | [ Framing.Frame a; Framing.Frame b ] ->
    check Alcotest.string "byte-at-a-time CRLF frame" "{\"a\":1}" a;
    check Alcotest.string "second frame" "{\"b\":2}" b
  | _ -> Alcotest.fail "expected exactly two frames");
  check (Alcotest.option Alcotest.string) "nothing pending" None
    (Framing.Splitter.finish sp);
  (* empty lines are keep-alives: no frames, and the stream continues *)
  let sp = Framing.Splitter.create () in
  check Alcotest.int "empty lines yield no frames" 0
    (List.length (Framing.Splitter.feed sp "\n\r\n\n"));
  match Framing.Splitter.feed sp "still-alive\n" with
  | [ Framing.Frame f ] -> check Alcotest.string "stream alive" "still-alive" f
  | _ -> Alcotest.fail "stream must survive empty lines"

(* Whatever way a byte stream is cut into chunks, the splitter must
   produce the same frame sequence — the daemon has no control over how
   the kernel fragments socket reads. *)
let qcheck_splitter_chunking =
  QCheck.Test.make ~name:"splitter: frames independent of chunking" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let charset = "ab{}\":,1 \r" in
      let line () =
        String.init (Rng.int rng 21) (fun _ ->
            charset.[Rng.int rng (String.length charset)])
      in
      let buf = Buffer.create 64 in
      for _ = 1 to Rng.int rng 7 do
        Buffer.add_string buf (line ());
        Buffer.add_char buf '\n'
      done;
      if Rng.int rng 2 = 1 then Buffer.add_string buf (line ());
      let stream = Buffer.contents buf in
      let max_bytes = 8 + Rng.int rng 32 in
      let run feed_style =
        let sp = Framing.Splitter.create ~max_bytes () in
        let frames =
          match feed_style with
          | `Whole -> Framing.Splitter.feed sp stream
          | `Chunked ->
            let n = String.length stream in
            let rec go off acc =
              if off >= n then acc
              else
                let len = min (1 + Rng.int rng (max 1 (n - off))) (n - off) in
                go (off + len)
                  (acc @ Framing.Splitter.feed sp (String.sub stream off len))
            in
            go 0 []
        in
        (frames, Framing.Splitter.finish sp)
      in
      run `Whole = run `Chunked)

let test_write_frame_rejects_newline () =
  let buf = Buffer.create 8 in
  let oc =
    (* no out_channel over a buffer in the stdlib: use a temp file *)
    open_out "frame-test.txt"
  in
  (match Framing.write_frame oc "a\nb" with
  | () -> Alcotest.fail "embedded newline accepted"
  | exception Invalid_argument _ -> ());
  Framing.write_frame oc "fine";
  close_out oc;
  let ic = open_in "frame-test.txt" in
  Buffer.add_channel buf ic (in_channel_length ic);
  close_in ic;
  Sys.remove "frame-test.txt";
  check Alcotest.string "line plus newline" "fine\n" (Buffer.contents buf)

(* ------------------------------------------------------------ codecs *)

let test_rtl_roundtrip () =
  List.iter
    (fun name ->
      let d = circuit name in
      let text = Codec.rtl_to_string d in
      let d' = Codec.rtl_of_string text in
      check Alcotest.string (name ^ " text fixpoint") text (Codec.rtl_to_string d');
      let o = opts () in
      check Alcotest.string (name ^ " same content key")
        (Codec.content_key ~design:d ~arch:Arch.default ~options:o)
        (Codec.content_key ~design:d' ~arch:Arch.default ~options:o))
    [ "ex1_small"; "crc8"; "fir"; "c5315" ]

let test_rtl_parse_errors () =
  (match Codec.rtl_of_string "not a header\n" with
  | _ -> Alcotest.fail "bad header accepted"
  | exception Failure msg ->
    check Alcotest.bool "line number in error" true
      (String.length msg > 0 &&
       (let has_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has_sub msg "line" || has_sub msg "header")));
  match Codec.rtl_of_string "nanomap-rtl v1 x\ns 0 a 4 bogus 1 2\n" with
  | _ -> Alcotest.fail "bad driver accepted"
  | exception Failure msg ->
    check Alcotest.bool "mentions line 2" true
      (let n = String.length msg in
       let rec go i = i < n && (msg.[i] = '2' || go (i + 1)) in
       go 0)

let test_options_roundtrip () =
  let o =
    { Flow.objective = Flow.Both (90, 12.5);
      physical = false;
      seed = 17;
      routability_threshold = 6.25;
      max_place_retries = 5;
      route_alg = Router.Full;
      check_level = Check.Full;
      defects = Defect.of_string "le 1 0 0 2\ntrack len4 3\n";
      route_caps =
        (let c = Nanomap_route.Rr_graph.default_caps in
         Some { c with Nanomap_route.Rr_graph.len1_tracks = 9 });
      mapper = Mapper.Aig;
      aig_effort = 3;
      jobs = 4;
      portfolio = 2;
      placer = Nanomap_place.Sat_place.Race }
  in
  (match Codec.options_of_json (Codec.options_to_json o) with
  | Ok o' -> check Alcotest.bool "every field round-trips" true (o = o')
  | Error e -> Alcotest.fail e);
  match Codec.options_of_json (Json.Obj []) with
  | Ok o' ->
    check Alcotest.bool "empty object means defaults" true
      (o' = Flow.default_options)
  | Error e -> Alcotest.fail e

let test_arch_roundtrip () =
  List.iter
    (fun a ->
      match Codec.arch_of_json (Codec.arch_to_json a) with
      | Ok a' -> check Alcotest.bool "arch round-trips" true (a = a')
      | Error e -> Alcotest.fail e)
    [ Arch.default; Arch.unbounded_k ]

let test_artifact_roundtrip () =
  match Flow.run_result ~options:(opts ()) (circuit "ex1_small") with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok report ->
    let a = Codec.artifact_of_report report in
    check Alcotest.bool "flow produced a bitstream" true (a.Codec.bitstream <> None);
    let s = Json.to_string (Codec.artifact_to_json a) in
    (match Result.bind (Json.parse s) Codec.artifact_of_json with
    | Ok a' ->
      check Alcotest.bool "artifact round-trips" true (Codec.artifact_equal a a');
      check Alcotest.string "canonical re-encoding" s
        (Json.to_string (Codec.artifact_to_json a'))
    | Error e -> Alcotest.fail e)

(* --------------------------------------------- protocol over channels *)

(* Drive the stdio daemon with a scripted input file and collect the
   response frames. *)
let stdio_session lines =
  let in_file = "serve-stdio-in.txt" and out_file = "serve-stdio-out.txt" in
  let oc = open_out_bin in_file in
  output_string oc lines;
  close_out oc;
  with_engine (fun eng ->
      let ic = open_in_bin in_file in
      let oc = open_out_bin out_file in
      Serve.serve_channels eng ic oc;
      close_in ic;
      close_out oc);
  let ic = open_in_bin out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove in_file;
  Sys.remove out_file;
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Proto.response_of_frame line with
        | Ok r -> Some r
        | Error e -> Alcotest.fail ("bad response frame: " ^ e))
    (String.split_on_char '\n' out)

let error_code = function
  | Proto.Error_resp { diag; _ } -> diag.Diag.code
  | _ -> Alcotest.fail "expected error response"

let test_protocol_rejections () =
  let good_job =
    Proto.request_to_frame (Proto.Job (job (circuit "ex1_small")))
  in
  let responses =
    stdio_session
      (String.concat "\n"
         [ "this is not json";
           "[1,2,3]";
           "{\"type\":\"job\",\"id\":\"x\"}";
           "{\"type\":\"warp\"}";
           "{\"type\":\"ping\"}";
           good_job;
           "{\"type\":\"shutdown\"}" ]
      ^ "\n")
  in
  (* the daemon answered every line and survived to the shutdown *)
  (match responses with
  | bad_json :: no_type :: no_design :: bad_type :: pong :: rest ->
    check Alcotest.string "bad-json code" "bad-json" (error_code bad_json);
    check Alcotest.string "non-object code" "bad-request" (error_code no_type);
    check Alcotest.string "jobless job code" "bad-request" (error_code no_design);
    check Alcotest.string "unknown type code" "bad-request" (error_code bad_type);
    (match pong with
    | Proto.Pong -> ()
    | _ -> Alcotest.fail "expected pong after the garbage");
    (match terminator rest with
    | Proto.Bye -> ()
    | _ -> Alcotest.fail "expected bye last");
    let result =
      List.find_map
        (function Proto.Result { cached; _ } -> Some cached | _ -> None)
        rest
    in
    (match result with
    | Some cached -> check Alcotest.bool "job compiled after garbage" false cached
    | None -> Alcotest.fail "no result for the good job");
    check Alcotest.bool "per-stage events streamed" true
      (List.exists (function Proto.Event _ -> true | _ -> false) rest)
  | _ -> Alcotest.fail "missing responses");
  (* every Diag carries the serve stage *)
  List.iter
    (fun r ->
      match r with
      | Proto.Error_resp { diag; _ } ->
        check Alcotest.string "serve stage" "serve" diag.Diag.stage
      | _ -> ())
    responses

let test_protocol_oversized_truncated () =
  let huge = String.make (Framing.default_max_bytes + 16) 'x' in
  let responses =
    stdio_session
      ("{\"type\":\"ping\"}\n" ^ huge ^ "\n{\"type\":\"ping\"}\n{\"type\":\"stats\"")
    (* no final newline: the last line is truncated *)
  in
  match responses with
  | [ Proto.Pong; oversized; Proto.Pong; truncated ] ->
    check Alcotest.string "oversized code" "oversized" (error_code oversized);
    check Alcotest.string "truncated code" "truncated" (error_code truncated)
  | _ -> Alcotest.fail "expected pong, oversized, pong, truncated"

(* ------------------------------------------------------------ engine *)

let test_job_isolation () =
  with_engine (fun eng ->
      let d = circuit "ex1_small" in
      let impossible = opts ~objective:(Flow.Both (1, 0.0001)) () in
      let batch =
        [ Proto.Job (job ~id:"good1" d);
          Proto.Job (job ~id:"bad" ~options:impossible d);
          Proto.Job (job ~id:"good2" (circuit "crc8")) ]
      in
      (match Serve.handle_batch eng batch with
      | [ r1; r2; r3 ] ->
        let a1 = expect_result r1 in
        check Alcotest.string "good1 answered" "good1" a1.id;
        (match terminator r2 with
        | Proto.Error_resp { id = Some "bad"; diag } ->
          check Alcotest.bool "typed flow diagnostic" true
            (diag.Diag.code <> "")
        | _ -> Alcotest.fail "bad job should fail alone");
        let a3 = expect_result r3 in
        check Alcotest.string "good2 answered" "good2" a3.id
      | _ -> Alcotest.fail "three answers expected");
      (* the engine is not poisoned: the next batch still compiles *)
      match Serve.handle_batch eng [ Proto.Job (job ~id:"after" d) ] with
      | [ r ] ->
        let a = expect_result r in
        check Alcotest.bool "cache hit after the failure" true a.cached
      | _ -> Alcotest.fail "one answer expected")

let test_batch_dedup () =
  with_engine (fun eng ->
      let d = circuit "ex1_small" in
      let batch =
        [ Proto.Job (job ~id:"a" d); Proto.Job (job ~id:"b" d);
          Proto.Job (job ~id:"c" d) ]
      in
      match Serve.handle_batch eng batch with
      | [ ra; rb; rc ] ->
        let a = expect_result ra and b = expect_result rb and c = expect_result rc in
        check Alcotest.bool "first is a cold compile" false a.cached;
        check Alcotest.bool "duplicates are hits" true (b.cached && c.cached);
        check Alcotest.bool "all keys equal" true (a.key = b.key && b.key = c.key);
        check Alcotest.bool "identical artifacts" true
          (Codec.artifact_equal a.artifact b.artifact
          && Codec.artifact_equal a.artifact c.artifact);
        let st = Serve.engine_stats eng in
        check Alcotest.int "one miss" 1 st.Proto.cache_misses
      | _ -> Alcotest.fail "three answers expected")

(* ---------------------------------------- cache differential matrix *)

let compile_twice design options =
  with_engine (fun eng ->
      let once id =
        match Serve.handle_batch eng [ Proto.Job (job ~id ~options design) ] with
        | [ rs ] -> expect_result rs
        | _ -> Alcotest.fail "one answer expected"
      in
      let cold = once "cold" in
      let hot = once "hot" in
      (cold, hot))

let test_cache_matrix () =
  List.iter
    (fun name ->
      List.iter
        (fun (fold_label, objective) ->
          List.iter
            (fun mapper ->
              let label =
                Printf.sprintf "%s fold=%s mapper=%s" name fold_label
                  (Mapper.string_of_mapper mapper)
              in
              let cold, hot =
                compile_twice (circuit name) (opts ~objective ~mapper ())
              in
              check Alcotest.bool (label ^ ": cold") false cold.cached;
              check Alcotest.bool (label ^ ": hot") true hot.cached;
              check Alcotest.bool (label ^ ": artifact byte-identical") true
                (Codec.artifact_equal cold.artifact hot.artifact);
              check
                (Alcotest.array Alcotest.string)
                (label ^ ": fingerprints") cold.artifact.Codec.fingerprints
                hot.artifact.Codec.fingerprints;
              check Alcotest.bool (label ^ ": placement present") true
                (cold.artifact.Codec.placement <> None);
              check
                (Alcotest.option Alcotest.string)
                (label ^ ": bitstream bytes") cold.artifact.Codec.bitstream
                hot.artifact.Codec.bitstream;
              check Alcotest.bool (label ^ ": bitstream present") true
                (cold.artifact.Codec.bitstream <> None))
            [ Mapper.Truth_table; Mapper.Aig ])
        [ ("1", Flow.Fixed_level 1); ("2", Flow.Fixed_level 2);
          ("none", Flow.No_folding) ])
    [ "ex1_small"; "crc8" ]

(* The PR-4 oracle accepts a replayed cached bitstream: decode the bytes
   that came back from the cache and drive all four differential levels
   with them. *)
let test_oracle_on_cached_bitstream () =
  let design = circuit "ex1_small" in
  let options = Fuzz.flow_options ~seed:1 (Fuzz.F_level 1) in
  let arch = Arch.unbounded_k in
  let cold, hot =
    with_engine (fun eng ->
        let once id =
          match
            Serve.handle_batch eng [ Proto.Job (job ~id ~arch ~options design) ]
          with
          | [ rs ] -> expect_result rs
          | _ -> Alcotest.fail "one answer expected"
        in
        let c = once "cold" in
        (c, once "hot"))
  in
  check Alcotest.bool "hit" true hot.cached;
  let cached_bytes =
    match hot.artifact.Codec.bitstream with
    | Some b -> b
    | None -> Alcotest.fail "no bitstream in the cached artifact"
  in
  match Flow.run_result ~options ~arch design with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok report ->
    let subject = Oracle.subject_of_report report in
    let bs =
      match subject.Oracle.bitstream with
      | Some bs -> bs
      | None -> Alcotest.fail "no bitstream in the cold report"
    in
    check Alcotest.string "cache returned the cold bytes"
      (Bytes.to_string bs.Bitstream.bytes) cached_bytes;
    check Alcotest.bool "cold artifact agrees" true
      (Codec.artifact_equal cold.artifact (Codec.artifact_of_report report));
    let replayed =
      { subject with
        Oracle.bitstream =
          Some { bs with Bitstream.bytes = Bytes.of_string cached_bytes } }
    in
    (match Oracle.run ~cycles:50 ~seed:3 replayed with
    | Oracle.Pass _ -> ()
    | o ->
      Alcotest.fail ("replayed cached bitstream: " ^ Oracle.describe o))

(* --------------------------------------------------- cache-key rules *)

let test_key_option_sensitivity () =
  let d = circuit "ex1_small" in
  let key o = Codec.content_key ~design:d ~arch:Arch.default ~options:o in
  let base = opts () in
  let caps = Nanomap_route.Rr_graph.default_caps in
  List.iter
    (fun (label, o) ->
      check Alcotest.bool (label ^ " changes the key") true (key o <> key base))
    [ ("objective", { base with Flow.objective = Flow.No_folding });
      ("physical", { base with Flow.physical = false });
      ("seed", { base with Flow.seed = 2 });
      ( "routability_threshold",
        { base with Flow.routability_threshold = 9.0 } );
      ("max_place_retries", { base with Flow.max_place_retries = 7 });
      ("route_alg", { base with Flow.route_alg = Router.Full });
      ("check_level", { base with Flow.check_level = Check.Full });
      ( "defects",
        { base with Flow.defects = Defect.of_string "le 0 0 0 1\n" } );
      ( "route_caps",
        { base with
          Flow.route_caps =
            Some
              { caps with
                Nanomap_route.Rr_graph.len1_tracks =
                  caps.Nanomap_route.Rr_graph.len1_tracks + 1 } } );
      ("mapper", { base with Flow.mapper = Mapper.Aig });
      ("aig_effort", { base with Flow.aig_effort = 3 });
      ("portfolio", { base with Flow.portfolio = 2 }) ];
  check Alcotest.string "jobs is wall-clock only: same key"
    (key base)
    (key { base with Flow.jobs = 4 });
  check Alcotest.bool "arch is part of the key" true
    (Codec.content_key ~design:d ~arch:Arch.unbounded_k ~options:base
    <> key base)

let const_design v =
  let d = Rtl.create "keyed" in
  let x = Rtl.add_input d "x" 4 in
  let c = Rtl.add_const d ~name:"c" ~width:4 v in
  let s = Rtl.add_op d ~name:"s" ~width:4 (Rtl.Add (x, c)) in
  Rtl.mark_output d "y" s;
  Rtl.validate d;
  d

let test_key_netlist_sensitivity () =
  let key d =
    Codec.content_key ~design:d ~arch:Arch.default ~options:(opts ())
  in
  check Alcotest.bool "constant change changes the key" true
    (key (const_design 3) <> key (const_design 5));
  let widened =
    let d = Rtl.create "keyed" in
    let x = Rtl.add_input d "x" 5 in
    let c = Rtl.add_const d ~name:"c" ~width:5 3 in
    let s = Rtl.add_op d ~name:"s" ~width:5 (Rtl.Add (x, c)) in
    Rtl.mark_output d "y" s;
    Rtl.validate d;
    d
  in
  check Alcotest.bool "width change changes the key" true
    (key (const_design 3) <> key widened)

(* Key determinism and sensitivity over random designs. Building the
   same spec twice must give byte-identical canonical text and the same
   key (the default-name regression: Rtl used to derive names from a
   process-global counter, so a rebuilt design hashed differently); a
   spec edit that changes the canonical text must change the key. *)
let qcheck_key_properties =
  let params = { Gen_rtl.default_params with Gen_rtl.steps = 12 } in
  QCheck.Test.make ~name:"content key: deterministic, netlist-sensitive"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let spec = Gen_rtl.random_spec (Rng.create seed) params in
      let d1 = Gen_rtl.build ~name:"q" spec in
      let d2 = Gen_rtl.build ~name:"q" spec in
      let o = opts () in
      let key d = Codec.content_key ~design:d ~arch:Arch.default ~options:o in
      let text d = Codec.rtl_to_string d in
      text d1 = text d2
      && key d1 = key d2
      && List.for_all
           (fun shrunk ->
             let ds = Gen_rtl.build ~name:"q" shrunk in
             if text ds = text d1 then key ds = key d1 else key ds <> key d1)
           (match Gen_rtl.shrink_candidates spec with
           | a :: b :: _ -> [ a; b ]
           | l -> l))

(* --------------------------------------- determinism at -j1 vs -j4 *)

let test_worker_count_stability () =
  let d = circuit "ex1_small" in
  let base = opts () in
  let artifact jobs =
    let options = { base with Flow.jobs; portfolio = 2 } in
    match Flow.run_result ~options d with
    | Ok report -> Codec.artifact_of_report report
    | Error diag -> Alcotest.fail (Diag.to_string diag)
  in
  let a1 = artifact 1 and a4 = artifact 4 in
  check Alcotest.bool "-j1 and -j4 reports serialize identically" true
    (Codec.artifact_equal a1 a4);
  check
    (Alcotest.array Alcotest.string)
    "fingerprints stable across worker counts" a1.Codec.fingerprints
    a4.Codec.fingerprints

let test_engine_pool_stability () =
  let rng = Rng.create 23 in
  let params = { Gen_rtl.default_params with Gen_rtl.steps = 10 } in
  let batch =
    List.init 6 (fun i ->
        Proto.Job
          (job ~id:(Printf.sprintf "g%d" i)
             (Gen_rtl.build ~name:(Printf.sprintf "g%d" i)
                (Gen_rtl.random_spec rng params))))
  in
  let run jobs =
    with_engine ~jobs (fun eng ->
        List.map (fun rs -> (expect_result rs).artifact)
          (Serve.handle_batch eng batch))
  in
  let a1 = run 1 and a4 = run 4 in
  check Alcotest.bool "engine output independent of pool width" true
    (List.for_all2 Codec.artifact_equal a1 a4)

(* ------------------------------------------------------------- cache *)

let small_artifact () =
  match Flow.run_result ~options:(opts ~physical:false ()) (circuit "crc8") with
  | Ok report -> Codec.artifact_of_report report
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_cache_lru_bound () =
  let a = small_artifact () in
  let c = Cache.create ~max_entries:2 () in
  let k1 = String.make 32 '1'
  and k2 = String.make 32 '2'
  and k3 = String.make 32 '3' in
  Cache.store c k1 a;
  Cache.store c k2 a;
  check Alcotest.bool "k1 resident" true (Cache.find c k1 <> None);
  (* k2 is now least recently used; the third store evicts it *)
  Cache.store c k3 a;
  check Alcotest.int "bound holds" 2 (Cache.mem_entries c);
  check Alcotest.int "one eviction" 1 (Cache.evictions c);
  check Alcotest.bool "recently used survives" true (Cache.find c k1 <> None);
  check Alcotest.bool "LRU victim gone" true (Cache.find c k2 = None)

let rm_rf dir =
  if Sys.file_exists dir then begin
    let rec go path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    go dir
  end

let test_cache_disk_tier () =
  let dir = "serve-cache-test" in
  rm_rf dir;
  let a = small_artifact () in
  let key = Hashing.digest_hex "disk-entry" in
  let c1 = Cache.create ~dir () in
  Cache.store c1 key a;
  (* a fresh process's cache (same dir) hits from disk *)
  let c2 = Cache.create ~dir () in
  (match Cache.find c2 key with
  | Some a' ->
    check Alcotest.bool "disk entry round-trips" true (Codec.artifact_equal a a')
  | None -> Alcotest.fail "disk entry not found");
  check Alcotest.int "promoted to memory" 1 (Cache.mem_entries c2);
  (* a corrupt disk entry is a miss, never a damaged artifact *)
  let path =
    Filename.concat (Filename.concat dir (String.sub key 0 2))
      (String.sub key 2 (String.length key - 2) ^ ".json")
  in
  let oc = open_out_bin path in
  output_string oc "{\"mangled\":";
  close_out oc;
  let c3 = Cache.create ~dir () in
  check Alcotest.bool "corrupt entry is a miss" true (Cache.find c3 key = None);
  check Alcotest.int "miss counted" 1 (Cache.misses c3);
  rm_rf dir

(* --------------------------------- robustness: deadlines, backpressure *)

let test_cancel_token () =
  let c = Cancel.none () in
  check Alcotest.bool "fresh token live" false (Cancel.expired c);
  Cancel.check c;
  Cancel.cancel c;
  check Alcotest.bool "manual trip" true (Cancel.expired c);
  check (Alcotest.option Alcotest.int) "cancelled is past due" (Some 0)
    (Cancel.remaining_ms c);
  (match Cancel.check c with
  | () -> Alcotest.fail "tripped token passed the check"
  | exception Diag.Fail d ->
    check Alcotest.string "stage" "serve" d.Diag.stage;
    check Alcotest.string "code" "timeout" d.Diag.code);
  check Alcotest.bool "zero budget is born expired" true
    (Cancel.expired (Cancel.make ~deadline_ms:0 ()));
  let loose = Cancel.make ~deadline_ms:60_000 () in
  check Alcotest.bool "roomy deadline not expired" false (Cancel.expired loose);
  match Cancel.remaining_ms loose with
  | Some ms -> check Alcotest.bool "remaining within budget" true (ms <= 60_000)
  | None -> Alcotest.fail "deadline token must report remaining time"

let test_pool_cancel () =
  Pool.with_pool ~jobs:2 (fun p ->
      let c = Cancel.make () in
      Cancel.cancel c;
      (match Pool.map ~cancel:c p ~f:(fun x -> x * 2) [| 1; 2; 3 |] with
      | _ -> Alcotest.fail "tripped token did not abort the map"
      | exception Diag.Fail d ->
        check Alcotest.string "serve stage" "serve" d.Diag.stage;
        check Alcotest.string "typed timeout" "timeout" d.Diag.code);
      (* the pool is not poisoned by the cancellation *)
      check (Alcotest.array Alcotest.int) "pool usable afterwards" [| 2; 4 |]
        (Pool.map p ~f:(fun x -> x * 2) [| 1; 2 |]))

let test_flow_cancel () =
  let c = Cancel.make () in
  Cancel.cancel c;
  match Flow.run_result ~cancel:c ~options:(opts ()) (circuit "ex1_small") with
  | Ok _ -> Alcotest.fail "cancelled flow returned a report"
  | Error d ->
    check Alcotest.string "stage" "serve" d.Diag.stage;
    check Alcotest.string "code" "timeout" d.Diag.code;
    check Alcotest.bool "no degradation attempts for a dead job" true
      (List.assoc_opt "degradations" d.Diag.context = None)

let test_deadline_timeout () =
  let d = circuit "ex1_small" in
  Fun.protect ~finally:Fault.Chaos.disarm (fun () ->
      (* stall past the budget at a stage boundary: deterministic overrun
         without a genuinely slow design *)
      Fault.Chaos.arm_stall ~design:(Rtl.name d) ~stage:"plan" ~ms:80;
      with_engine (fun eng ->
          (match
             Serve.handle_batch eng
               [ Proto.Job (job ~id:"slow" ~deadline_ms:20 d) ]
           with
          | [ rs ] -> (
            match terminator rs with
            | Proto.Error_resp { id = Some "slow"; diag } ->
              check Alcotest.string "stage" "serve" diag.Diag.stage;
              check Alcotest.string "code" "timeout" diag.Diag.code
            | _ -> Alcotest.fail "expected a serve/timeout rejection")
          | _ -> Alcotest.fail "one answer expected");
          Fault.Chaos.disarm ();
          (* the worker was freed, not wedged: the same engine compiles *)
          (match Serve.handle_batch eng [ Proto.Job (job ~id:"ok" d) ] with
          | [ rs ] ->
            check Alcotest.string "clean job answered" "ok" (expect_result rs).id
          | _ -> Alcotest.fail "one answer expected");
          let st = Serve.engine_stats eng in
          check Alcotest.int "timeout counted" 1 st.Proto.timeouts;
          check (Alcotest.option Alcotest.int) "ledger agrees" (Some 1)
            (List.assoc_opt "serve/timeout" st.Proto.rejected)))

let test_deadline_protocol () =
  (match
     Proto.request_of_frame
       (Proto.request_to_frame
          (Proto.Job (job ~id:"d" ~deadline_ms:1500 (circuit "crc8"))))
   with
  | Ok (Proto.Job j) ->
    check (Alcotest.option Alcotest.int) "deadline survives the wire"
      (Some 1500) j.Proto.deadline_ms
  | Ok _ -> Alcotest.fail "decoded as a non-job"
  | Error d -> Alcotest.fail (Diag.to_string d));
  (match
     Proto.request_of_frame
       (Proto.request_to_frame (Proto.Job (job (circuit "crc8"))))
   with
  | Ok (Proto.Job j) ->
    check (Alcotest.option Alcotest.int) "absent stays absent" None
      j.Proto.deadline_ms
  | _ -> Alcotest.fail "round trip failed");
  List.iter
    (fun (label, frame) ->
      match Proto.request_of_frame frame with
      | Ok _ -> Alcotest.fail (label ^ " accepted")
      | Error d ->
        check Alcotest.string (label ^ " rejected") "bad-request" d.Diag.code)
    [ ( "zero deadline",
        "{\"type\":\"job\",\"id\":\"x\",\"design\":{\"kind\":\"circuit\",\
         \"name\":\"crc8\"},\"deadline_ms\":0}" );
      ( "negative deadline",
        "{\"type\":\"job\",\"id\":\"x\",\"design\":{\"kind\":\"circuit\",\
         \"name\":\"crc8\"},\"deadline_ms\":-5}" );
      ( "non-integer deadline",
        "{\"type\":\"job\",\"id\":\"x\",\"design\":{\"kind\":\"circuit\",\
         \"name\":\"crc8\"},\"deadline_ms\":\"soon\"}" ) ]

let test_queue_backpressure () =
  let limits = { Serve.default_limits with Serve.max_queued_jobs = 2 } in
  with_engine ~limits (fun eng ->
      let d = circuit "ex1_small" in
      (* distinct seeds give distinct content keys: five unique misses *)
      let batch =
        List.init 5 (fun i ->
            Proto.Job
              (job ~id:(Printf.sprintf "q%d" i) ~options:(opts ~seed:(i + 1) ())
                 d))
      in
      let responses = Serve.handle_batch eng batch in
      check Alcotest.int "every job answered" 5 (List.length responses);
      let shed, served =
        List.partition
          (fun rs ->
            match terminator rs with
            | Proto.Error_resp { diag; _ } -> diag.Diag.code = "overloaded"
            | _ -> false)
          responses
      in
      check Alcotest.int "admissions bounded" 2 (List.length served);
      check Alcotest.int "excess shed" 3 (List.length shed);
      List.iter
        (fun rs ->
          match terminator rs with
          | Proto.Error_resp { diag; _ } -> (
            match Proto.retry_after_ms diag with
            | Some ms -> check Alcotest.bool "positive retry hint" true (ms > 0)
            | None -> Alcotest.fail "overloaded without a retry hint")
          | _ -> Alcotest.fail "partition error")
        shed;
      List.iter (fun rs -> ignore (expect_result rs)) served;
      let st = Serve.engine_stats eng in
      check Alcotest.int "shed counted" 3 st.Proto.shed;
      check (Alcotest.option Alcotest.int) "ledger agrees" (Some 3)
        (List.assoc_opt "serve/overloaded" st.Proto.rejected);
      check Alcotest.bool "uptime is sane" true (st.Proto.uptime_s >= 0);
      (* shedding is per batch, not a latch: a later job is admitted
         (seed 1 was compiled above, so this is even a cache hit) *)
      match Serve.handle_batch eng [ Proto.Job (job ~id:"later" d) ] with
      | [ rs ] ->
        check Alcotest.string "admitted later" "later" (expect_result rs).id
      | _ -> Alcotest.fail "one answer expected")

let test_drain_ordering () =
  with_engine (fun eng ->
      let d = circuit "crc8" in
      (match
         Serve.handle_batch eng
           [ Proto.Job (job ~id:"before" d); Proto.Shutdown;
             Proto.Job (job ~id:"after" d) ]
       with
      | [ before; bye; after ] ->
        check Alcotest.string "job admitted before the shutdown finishes"
          "before" (expect_result before).id;
        (match terminator bye with
        | Proto.Bye -> ()
        | _ -> Alcotest.fail "shutdown answers bye");
        (match terminator after with
        | Proto.Error_resp { id = Some "after"; diag } ->
          check Alcotest.string "later job rejected" "draining" diag.Diag.code
        | _ -> Alcotest.fail "job after shutdown must be rejected")
      | _ -> Alcotest.fail "three answers expected");
      check Alcotest.bool "engine is draining" true (Serve.engine_draining eng);
      (* draining is sticky across batches *)
      (match Serve.handle_batch eng [ Proto.Job (job ~id:"next" d) ] with
      | [ rs ] -> (
        match terminator rs with
        | Proto.Error_resp { diag; _ } ->
          check Alcotest.string "still draining" "draining" diag.Diag.code
        | _ -> Alcotest.fail "draining engine accepted a job")
      | _ -> Alcotest.fail "one answer expected");
      check Alcotest.int "drained counted" 2
        (Serve.engine_stats eng).Proto.drained)

let test_backoff_schedule () =
  let a = Serve.Backoff.delays_ms ~seed:9 ~attempts:6 () in
  check Alcotest.(list int) "same seed, same schedule" a
    (Serve.Backoff.delays_ms ~seed:9 ~attempts:6 ());
  check Alcotest.int "one delay per attempt" 6 (List.length a);
  check Alcotest.bool "different seeds decorrelate" true
    (a <> Serve.Backoff.delays_ms ~seed:10 ~attempts:6 ());
  List.iteri
    (fun i d ->
      let expo = min 2000 (50 * (1 lsl i)) in
      check Alcotest.bool
        (Printf.sprintf "delay %d in the jitter band" i)
        true
        (d >= expo / 2 && d <= expo))
    a;
  let tiny = Serve.Backoff.delays_ms ~base_ms:1 ~cap_ms:4 ~seed:1 ~attempts:8 () in
  check Alcotest.bool "cap respected" true (List.for_all (fun d -> d <= 4) tiny)

let test_client_unreachable () =
  match
    Serve.Client.connect ~retries:2 ~backoff_ms:1
      ~socket_path:"serve-no-daemon.sock" ()
  with
  | _ -> Alcotest.fail "connected to a daemon that does not exist"
  | exception Diag.Fail d ->
    check Alcotest.string "stage" "serve" d.Diag.stage;
    check Alcotest.string "code" "unreachable" d.Diag.code;
    check (Alcotest.option Alcotest.string) "socket named in context"
      (Some "serve-no-daemon.sock")
      (List.assoc_opt "socket" d.Diag.context)

let test_stats_roundtrip () =
  let st =
    { Proto.jobs_done = 7; cache_hits = 3; cache_misses = 4; cache_entries = 4;
      uptime_s = 123; timeouts = 2; shed = 5; drained = 1;
      slow_reader_disconnects = 1; cache_scrubbed = 2; cache_corrupt = 1;
      rejected = [ ("serve/overloaded", 5); ("serve/timeout", 2) ] }
  in
  (match
     Proto.response_of_frame (Proto.response_to_frame (Proto.Stats_resp st))
   with
  | Ok (Proto.Stats_resp st') ->
    check Alcotest.bool "every counter survives the wire" true (st = st')
  | Ok _ -> Alcotest.fail "decoded as a non-stats response"
  | Error e -> Alcotest.fail e);
  (* a legacy (pre-robustness) frame still parses: new counters default 0 *)
  match
    Proto.response_of_frame
      "{\"type\":\"stats\",\"jobs_done\":1,\"cache_hits\":0,\
       \"cache_misses\":1,\"cache_entries\":1}"
  with
  | Ok (Proto.Stats_resp st') ->
    check Alcotest.int "legacy jobs_done" 1 st'.Proto.jobs_done;
    check Alcotest.int "missing counter defaults to zero" 0 st'.Proto.timeouts;
    check Alcotest.bool "missing ledger defaults to empty" true
      (st'.Proto.rejected = [])
  | Ok _ -> Alcotest.fail "decoded as a non-stats response"
  | Error e -> Alcotest.fail e

(* ----------------------------------------------- service-level chaos *)

let test_chaos_crash_isolated () =
  let d = circuit "ex1_small" in
  Fun.protect ~finally:Fault.Chaos.disarm (fun () ->
      with_engine (fun eng ->
          Fault.Chaos.arm_crash ~design:(Rtl.name d) ~stage:"prepare";
          (match Serve.handle_batch eng [ Proto.Job (job ~id:"doomed" d) ] with
          | [ rs ] -> (
            match terminator rs with
            | Proto.Error_resp { id = Some "doomed"; diag } ->
              check Alcotest.string "adopted at the stage" "prepare"
                diag.Diag.stage;
              check Alcotest.string "typed code" "uncaught-failure"
                diag.Diag.code
            | _ -> Alcotest.fail "crash must surface as a typed error")
          | _ -> Alcotest.fail "one answer expected");
          Fault.Chaos.disarm ();
          (* the engine survived; the post-fault compile is byte-identical
             to a cold compile in a pristine engine *)
          let healed =
            match Serve.handle_batch eng [ Proto.Job (job ~id:"healed" d) ] with
            | [ rs ] -> expect_result rs
            | _ -> Alcotest.fail "one answer expected"
          in
          check Alcotest.bool "the failure was never cached" false healed.cached;
          let pristine =
            with_engine (fun eng2 ->
                match
                  Serve.handle_batch eng2 [ Proto.Job (job ~id:"cold" d) ]
                with
                | [ rs ] -> expect_result rs
                | _ -> Alcotest.fail "one answer expected")
          in
          check Alcotest.string "same content key" pristine.key healed.key;
          check Alcotest.bool "byte-identical to a pristine cold compile" true
            (Codec.artifact_equal healed.artifact pristine.artifact)))

let test_chaos_cache_crash_safety () =
  let dir = "serve-chaos-cache" in
  rm_rf dir;
  let a = small_artifact () in
  let key = Hashing.digest_hex "chaos-entry" in
  check Alcotest.string "chaos and cache agree on the disk layout"
    (Cache.entry_path dir key)
    (Fault.Chaos.entry_path ~dir ~key);
  let c1 = Cache.create ~dir () in
  Cache.store c1 key a;
  (* torn write: half the file; must become a miss, never a damaged artifact *)
  check Alcotest.bool "entry there to corrupt" true
    (Fault.Chaos.corrupt_disk_entry ~dir ~key);
  let c2 = Cache.create ~dir () in
  check Alcotest.bool "digest catches the torn write" true
    (Cache.find c2 key = None);
  check Alcotest.int "corruption counted" 1 (Cache.corrupt c2);
  check Alcotest.bool "damaged file quarantined" false
    (Sys.file_exists (Cache.entry_path dir key));
  (* the next store repairs the entry *)
  Cache.store c2 key a;
  (match Cache.find (Cache.create ~dir ()) key with
  | Some a' ->
    check Alcotest.bool "repaired entry round-trips" true
      (Codec.artifact_equal a a')
  | None -> Alcotest.fail "repaired entry not found");
  (* an orphaned temp file is removed by the startup scrub *)
  let tmp = Fault.Chaos.orphan_tmp ~dir ~key in
  check Alcotest.bool "orphan planted" true (Sys.file_exists tmp);
  let c4 = Cache.create ~dir () in
  check Alcotest.bool "orphan scrubbed at startup" false (Sys.file_exists tmp);
  check Alcotest.int "scrub counted" 1 (Cache.scrubbed c4);
  check Alcotest.bool "real entry untouched by the scrub" true
    (Cache.find c4 key <> None);
  (* the verify sweep: clean tier first, then one freshly torn entry *)
  let r = Cache.verify c4 in
  check Alcotest.int "verify sees the entry" 1 r.Cache.checked;
  check Alcotest.int "clean tier verifies" 0 r.Cache.corrupt;
  ignore (Fault.Chaos.corrupt_disk_entry ~dir ~key);
  let r2 = Cache.verify c4 in
  check Alcotest.int "sweep finds the damage" 1 r2.Cache.corrupt;
  check Alcotest.int "and removes it" 1 r2.Cache.removed;
  rm_rf dir

let test_chaos_corrupt_entry_recompiles () =
  let dir = "serve-chaos-recompile" in
  rm_rf dir;
  let d = circuit "crc8" in
  let once id =
    with_engine ~cache:(Cache.create ~dir ()) (fun eng ->
        match Serve.handle_batch eng [ Proto.Job (job ~id d) ] with
        | [ rs ] -> expect_result rs
        | _ -> Alcotest.fail "one answer expected")
  in
  let cold = once "cold" in
  check Alcotest.bool "entry corrupted on disk" true
    (Fault.Chaos.corrupt_disk_entry ~dir ~key:cold.key);
  (* a fresh daemon over the same cache dir: the digest check turns the
     torn entry into a miss and the recompile matches the original bytes *)
  let again = once "again" in
  check Alcotest.bool "recompiled, not served damaged" false again.cached;
  check Alcotest.bool "byte-identical to the original" true
    (Codec.artifact_equal cold.artifact again.artifact);
  rm_rf dir

let test_chaos_garbage_frames () =
  let frames = Fault.Chaos.garbage_frames ~seed:7 ~count:12 in
  check Alcotest.int "deterministic count" 12 (List.length frames);
  check Alcotest.bool "deterministic content" true
    (frames = Fault.Chaos.garbage_frames ~seed:7 ~count:12);
  check Alcotest.bool "never an embedded newline" true
    (List.for_all (fun f -> not (String.contains f '\n')) frames);
  let responses =
    stdio_session (String.concat "\n" (frames @ [ "{\"type\":\"ping\"}" ]) ^ "\n")
  in
  check Alcotest.int "every frame answered" 13 (List.length responses);
  match List.rev responses with
  | Proto.Pong :: errors_rev ->
    List.iter
      (fun r ->
        let code = error_code r in
        check Alcotest.bool ("typed rejection: " ^ code) true
          (code = "bad-json" || code = "bad-request"))
      errors_rev
  | _ -> Alcotest.fail "daemon must answer the ping after the garbage"

(* ------------------------------------------------- socket daemon *)

let start_daemon eng socket_path =
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.serve_unix ~on_ready:(fun () -> Atomic.set ready true) eng
          ~socket_path)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  daemon

let test_socket_interleaved_clients () =
  let socket_path = "serve-test.sock" in
  with_engine (fun eng ->
      let daemon = start_daemon eng socket_path in
      let open_raw () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        fd
      in
      let send_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
      let c1 = open_raw () and c2 = open_raw () in
      let ic1 = Unix.in_channel_of_descr c1
      and ic2 = Unix.in_channel_of_descr c2 in
      let recv ic =
        match Framing.read_frame ic with
        | `Frame line -> (
          match Proto.response_of_frame line with
          | Ok r -> r
          | Error e -> Alcotest.fail e)
        | _ -> Alcotest.fail "no frame"
      in
      (* c1's ping arrives split across writes, with c2's whole ping in
         between: per-connection splitters must keep the streams apart *)
      send_raw c1 "{\"type\":";
      send_raw c2 "{\"type\":\"ping\"}\n";
      (match recv ic2 with
      | Proto.Pong -> ()
      | _ -> Alcotest.fail "c2 pong");
      send_raw c1 "\"ping\"}\n";
      (match recv ic1 with
      | Proto.Pong -> ()
      | _ -> Alcotest.fail "c1 pong");
      (* same job from both clients: the second answer comes from cache *)
      let j = Proto.request_to_frame (Proto.Job (job (circuit "crc8"))) in
      send_raw c1 (j ^ "\n");
      let rec result ic =
        match recv ic with
        | Proto.Result { id; key; cached; artifact } -> { id; key; cached; artifact }
        | Proto.Event _ -> result ic
        | _ -> Alcotest.fail "expected events then result"
      in
      let r1 = result ic1 in
      send_raw c2 (j ^ "\n");
      let r2 = result ic2 in
      check Alcotest.bool "second client hits the cache" true r2.cached;
      check Alcotest.string "same key" r1.key r2.key;
      check Alcotest.bool "same artifact over both connections" true
        (Codec.artifact_equal r1.artifact r2.artifact);
      (* garbage from c2 does not disturb c1 *)
      send_raw c2 "definitely not json\n";
      (match recv ic2 with
      | Proto.Error_resp { diag; _ } ->
        check Alcotest.string "typed rejection" "bad-json" diag.Diag.code
      | _ -> Alcotest.fail "expected rejection");
      send_raw c1 "{\"type\":\"ping\"}\n";
      (match recv ic1 with
      | Proto.Pong -> ()
      | _ -> Alcotest.fail "c1 alive after c2's garbage");
      (* clean shutdown *)
      send_raw c1 "{\"type\":\"shutdown\"}\n";
      (match recv ic1 with
      | Proto.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      Domain.join daemon;
      check Alcotest.bool "socket file removed" false (Sys.file_exists socket_path);
      (try Unix.close c1 with Unix.Unix_error _ -> ());
      try Unix.close c2 with Unix.Unix_error _ -> ())

let test_client_roundtrip () =
  let socket_path = "serve-client.sock" in
  with_engine (fun eng ->
      let daemon = start_daemon eng socket_path in
      let client = Serve.Client.connect ~socket_path () in
      Serve.Client.send client (Proto.Job (job (circuit "crc8")));
      let events, terminator = Serve.Client.recv_result client in
      (match terminator with
      | Proto.Result { cached; _ } ->
        check Alcotest.bool "cold compile" false cached;
        check Alcotest.bool "events streamed before the result" true
          (events <> [])
      | _ -> Alcotest.fail "expected result");
      Serve.Client.send client Proto.Stats_req;
      (match Serve.Client.recv client with
      | Proto.Stats_resp st ->
        check Alcotest.int "one job done" 1 st.Proto.jobs_done;
        check Alcotest.int "one miss" 1 st.Proto.cache_misses
      | _ -> Alcotest.fail "expected stats");
      Serve.Client.send client Proto.Shutdown;
      (match Serve.Client.recv client with
      | Proto.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      Serve.Client.close client;
      Domain.join daemon)

let () =
  let to_alco = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [ ( "json",
        [ Alcotest.test_case "round trip and rejection" `Quick test_json_roundtrip ] );
      ( "framing",
        [ Alcotest.test_case "chunked reassembly" `Quick test_splitter_chunks;
          Alcotest.test_case "oversized resync" `Quick test_splitter_oversized;
          Alcotest.test_case "edge cases" `Quick test_splitter_edge_cases;
          to_alco qcheck_splitter_chunking;
          Alcotest.test_case "write_frame rejects newline" `Quick
            test_write_frame_rejects_newline ] );
      ( "codec",
        [ Alcotest.test_case "rtl round trip" `Quick test_rtl_roundtrip;
          Alcotest.test_case "rtl parse errors" `Quick test_rtl_parse_errors;
          Alcotest.test_case "options round trip" `Quick test_options_roundtrip;
          Alcotest.test_case "arch round trip" `Quick test_arch_roundtrip;
          Alcotest.test_case "artifact round trip" `Quick test_artifact_roundtrip ] );
      ( "protocol",
        [ Alcotest.test_case "typed rejections, daemon survives" `Quick
            test_protocol_rejections;
          Alcotest.test_case "oversized and truncated frames" `Quick
            test_protocol_oversized_truncated ] );
      ( "engine",
        [ Alcotest.test_case "first-failure isolation" `Quick test_job_isolation;
          Alcotest.test_case "within-batch dedup" `Quick test_batch_dedup;
          Alcotest.test_case "artifacts independent of pool width" `Quick
            test_engine_pool_stability ] );
      ( "cache",
        [ Alcotest.test_case "differential matrix vs cold compile" `Slow
            test_cache_matrix;
          Alcotest.test_case "oracle passes on replayed cached bitstream" `Quick
            test_oracle_on_cached_bitstream;
          Alcotest.test_case "LRU bound" `Quick test_cache_lru_bound;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier ] );
      ( "content-key",
        [ Alcotest.test_case "every option is hashed (except jobs)" `Quick
            test_key_option_sensitivity;
          Alcotest.test_case "netlist mutations change the key" `Quick
            test_key_netlist_sensitivity;
          to_alco qcheck_key_properties;
          Alcotest.test_case "fingerprints stable at -j1 vs -j4" `Quick
            test_worker_count_stability ] );
      ( "robustness",
        [ Alcotest.test_case "cancellation token" `Quick test_cancel_token;
          Alcotest.test_case "pool honors a tripped token" `Quick
            test_pool_cancel;
          Alcotest.test_case "flow aborts at a stage boundary" `Quick
            test_flow_cancel;
          Alcotest.test_case "deadline becomes serve/timeout" `Quick
            test_deadline_timeout;
          Alcotest.test_case "deadline_ms on the wire" `Quick
            test_deadline_protocol;
          Alcotest.test_case "queue bound sheds with a retry hint" `Quick
            test_queue_backpressure;
          Alcotest.test_case "drain ordering" `Quick test_drain_ordering;
          Alcotest.test_case "backoff schedule is deterministic" `Quick
            test_backoff_schedule;
          Alcotest.test_case "unreachable daemon is a typed failure" `Quick
            test_client_unreachable;
          Alcotest.test_case "stats round trip, legacy defaults" `Quick
            test_stats_roundtrip ] );
      ( "chaos",
        [ Alcotest.test_case "crash mid-compile is isolated" `Quick
            test_chaos_crash_isolated;
          Alcotest.test_case "cache survives torn writes and orphans" `Quick
            test_chaos_cache_crash_safety;
          Alcotest.test_case "corrupt entry recompiles byte-identical" `Quick
            test_chaos_corrupt_entry_recompiles;
          Alcotest.test_case "garbage frames all answered" `Quick
            test_chaos_garbage_frames ] );
      ( "socket",
        [ Alcotest.test_case "interleaved clients" `Quick
            test_socket_interleaved_clients;
          Alcotest.test_case "client round trip" `Quick test_client_roundtrip ] ) ]
