module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize
module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Truth_table = Nanomap_logic.Truth_table
module Decompose = Nanomap_techmap.Decompose
module Simplify = Nanomap_techmap.Simplify
module Flowmap = Nanomap_techmap.Flowmap
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Rng = Nanomap_util.Rng
module Gen_rtl = Nanomap_verify.Gen_rtl

let check = Alcotest.check

(* Wrap a bare gate netlist as a tagged network (inputs become fake PI
   origins keyed by their creation index). *)
let tag_netlist nl =
  let input_origins =
    List.mapi (fun i (_, gid) -> (gid, Lut_network.Pi_bit (i, 0))) (Gate_netlist.inputs nl)
  in
  let output_targets =
    List.map (fun (name, gid) -> (Lut_network.Po_target name, gid)) (Gate_netlist.outputs nl)
  in
  { Decompose.gates = nl;
    tags = Array.make (Gate_netlist.size nl) (-1);
    input_origins;
    output_targets }

(* Evaluate a mapped LUT network against gate-level simulation of the same
   tagged netlist, over the full input space (distinct PI origins <= 16).
   Values are keyed by origin, not creation order, because simplification
   reorders and drops inputs. *)
let equivalent_exhaustive tg lut =
  let nl = tg.Decompose.gates in
  let ins = Gate_netlist.inputs nl in
  let n =
    List.fold_left
      (fun acc (_, origin) ->
        match origin with Lut_network.Pi_bit (i, _) -> max acc (i + 1) | _ -> acc)
      0 tg.Decompose.input_origins
  in
  assert (n <= 16);
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let input_values = Array.init n (fun i -> v land (1 lsl i) <> 0) in
    let sim_inputs =
      List.map
        (fun (_, gid) ->
          match List.assoc gid tg.Decompose.input_origins with
          | Lut_network.Pi_bit (i, _) -> input_values.(i)
          | Lut_network.Const_bit b -> b
          | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false)
        ins
    in
    let gate_values = Gate_netlist.simulate nl (Array.of_list sim_inputs) in
    let origin_value = function
      | Lut_network.Pi_bit (i, _) -> input_values.(i)
      | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false
      | Lut_network.Const_bit b -> b
    in
    let lut_values = Lut_network.eval lut origin_value in
    List.iter
      (fun (target, gid) ->
        let expected = gate_values.(gid) in
        let node =
          List.assoc target (Lut_network.outputs lut)
        in
        if lut_values.(node) <> expected then ok := false)
      tg.Decompose.output_targets
  done;
  !ok

(* --- decompose --- *)

let fsm_datapath () =
  let d = Rtl.create "fsm" in
  let x = Rtl.add_input d "x" 4 in
  let s = Rtl.add_register d ~name:"state" ~width:1 () in
  let r = Rtl.add_register d ~name:"r" ~width:4 () in
  let sum = Rtl.add_op d ~name:"sum" ~width:4 (Rtl.Add (r, x)) in
  let hold = Rtl.add_op d ~name:"hold" ~width:4 (Rtl.Mux (s, sum, r)) in
  let ns = Rtl.add_op d ~name:"ns" ~width:1 (Rtl.Bit_not s) in
  Rtl.connect_register d r ~d:hold;
  Rtl.connect_register d s ~d:ns;
  Rtl.mark_output d "r_out" hold;
  (d, x, s, r)

let test_decompose_outputs () =
  let d, _, _, _ = fsm_datapath () in
  let lv = Levelize.levelize d in
  let tg = Decompose.plane lv 1 in
  (* outputs: 4 register bits for r, 1 for s, 4 PO bits *)
  check Alcotest.int "outputs" 9 (List.length tg.Decompose.output_targets);
  (* inputs: x(4) + r(4) + s(1) bits *)
  check Alcotest.int "inputs" 9 (List.length tg.Decompose.input_origins)

(* Decomposed plane must compute the same register next-state function as
   the RTL simulator across exhaustive register/input values. *)
let test_decompose_equivalence () =
  let d, x, s, r = fsm_datapath () in
  let lv = Levelize.levelize d in
  let tg = Decompose.plane lv 1 in
  let nl = tg.Decompose.gates in
  for vx = 0 to 15 do
    for vr = 0 to 15 do
      for vs = 0 to 1 do
        (* Gate-level: order inputs by their creation order via origins. *)
        let ins = Gate_netlist.inputs nl in
        let input_values =
          List.map
            (fun (_, gid) ->
              match List.assoc gid tg.Decompose.input_origins with
              | Lut_network.Register_bit (sid, b) ->
                let v = if sid = r then vr else vs in
                v land (1 lsl b) <> 0
              | Lut_network.Pi_bit (sid, b) ->
                assert (sid = x);
                vx land (1 lsl b) <> 0
              | Lut_network.Const_bit b -> b
              | Lut_network.Wire_bit _ -> assert false)
            ins
        in
        let values = Gate_netlist.simulate nl (Array.of_list input_values) in
        let reg_next sid bit =
          let target = Lut_network.Reg_target (sid, bit) in
          values.(List.assoc target tg.Decompose.output_targets)
        in
        let expect_hold = if vs = 1 then vr else (vr + vx) land 15 in
        for b = 0 to 3 do
          check Alcotest.bool "r next" (expect_hold land (1 lsl b) <> 0) (reg_next r b)
        done;
        check Alcotest.bool "s next" (vs = 0) (reg_next s 0)
      done
    done
  done

(* --- simplify --- *)

let test_simplify_shrinks_and_preserves () =
  let nl = Gate_netlist.create () in
  let a = Gen.input_bus nl "a" 4 in
  let b = Gen.input_bus nl "b" 4 in
  let sums, cout = Gen.ripple_carry_adder nl a b in
  Gen.mark_output_bus nl "s" sums;
  Gate_netlist.mark_output nl "cout" cout;
  let tg = tag_netlist nl in
  let tg' = Simplify.run tg in
  check Alcotest.bool "shrinks"
    true
    (Gate_netlist.num_gates tg'.Decompose.gates < Gate_netlist.num_gates nl);
  (* exhaustive equivalence of old vs new netlists; the simplified netlist
     re-creates inputs in traversal order so values go through origins *)
  for v = 0 to 255 do
    let ins = Array.init 8 (fun i -> v land (1 lsl i) <> 0) in
    let old_outs = Gate_netlist.output_values nl ins in
    let sim_inputs =
      List.map
        (fun (_, gid) ->
          match List.assoc gid tg'.Decompose.input_origins with
          | Lut_network.Pi_bit (i, _) -> ins.(i)
          | _ -> false)
        (Gate_netlist.inputs tg'.Decompose.gates)
    in
    let new_values = Gate_netlist.simulate tg'.Decompose.gates (Array.of_list sim_inputs) in
    List.iter
      (fun (target, gid) ->
        let name = match target with Lut_network.Po_target n -> n | _ -> assert false in
        check Alcotest.bool name (List.assoc name old_outs) new_values.(gid))
      tg'.Decompose.output_targets
  done

let test_simplify_constant_folding () =
  let nl = Gate_netlist.create () in
  let a = Gate_netlist.add_input nl "a" in
  let zero = Gate_netlist.add_const nl false in
  let one = Gate_netlist.add_const nl true in
  let x = Gate_netlist.add_gate nl Gate.And2 [| a; one |] in
  let y = Gate_netlist.add_gate nl Gate.Or2 [| x; zero |] in
  let z = Gate_netlist.add_gate nl Gate.Xor2 [| y; zero |] in
  let w = Gate_netlist.add_gate nl Gate.Not [| z |] in
  let w2 = Gate_netlist.add_gate nl Gate.Not [| w |] in
  Gate_netlist.mark_output nl "w2" w2;
  let tg' = Simplify.run (tag_netlist nl) in
  (* everything folds to just the input *)
  check Alcotest.int "no gates left" 0 (Gate_netlist.num_gates tg'.Decompose.gates);
  let _, gid = List.hd (List.rev tg'.Decompose.output_targets) in
  let values = Gate_netlist.simulate tg'.Decompose.gates [| true |] in
  check Alcotest.bool "w2 = a" true values.(gid)

let test_simplify_cse () =
  let nl = Gate_netlist.create () in
  let a = Gate_netlist.add_input nl "a" in
  let b = Gate_netlist.add_input nl "b" in
  let x1 = Gate_netlist.add_gate nl Gate.And2 [| a; b |] in
  let x2 = Gate_netlist.add_gate nl Gate.And2 [| b; a |] in
  let y = Gate_netlist.add_gate nl Gate.Or2 [| x1; x2 |] in
  Gate_netlist.mark_output nl "y" y;
  let tg' = Simplify.run (tag_netlist nl) in
  (* x1 = x2 after commutative canonicalization; OR of equals folds. *)
  check Alcotest.int "single and" 1 (Gate_netlist.num_gates tg'.Decompose.gates)

(* --- flowmap --- *)

let test_flowmap_k_feasible () =
  let nl = Gate_netlist.create () in
  let a = Gen.input_bus nl "a" 4 in
  let b = Gen.input_bus nl "b" 4 in
  let sums, cout = Gen.ripple_carry_adder nl a b in
  Gen.mark_output_bus nl "s" sums;
  Gate_netlist.mark_output nl "cout" cout;
  let tg = Simplify.run (tag_netlist nl) in
  let lut = Flowmap.map ~k:4 tg in
  Lut_network.validate lut;
  Lut_network.iter
    (fun _ -> function
      | Lut_network.Lut { fanins; _ } ->
        check Alcotest.bool "<=4 inputs" true (Array.length fanins <= 4)
      | Lut_network.Input _ -> ())
    lut;
  check Alcotest.bool "equivalent" true (equivalent_exhaustive tg lut)

let test_flowmap_depth_optimal_tree () =
  (* 16-input AND tree: gate depth 4, optimal 4-LUT depth 2. *)
  let nl = Gate_netlist.create () in
  let xs = Gen.input_bus nl "x" 16 in
  let root = Gen.and_tree nl (Array.to_list xs) in
  Gate_netlist.mark_output nl "y" root;
  let tg = Simplify.run (tag_netlist nl) in
  let lut = Flowmap.map ~k:4 tg in
  check Alcotest.int "depth 2" 2 (Lut_network.depth lut)

let test_flowmap_labels_monotone () =
  let rng = Rng.create 99 in
  let nl = Gen.random_layered rng ~num_inputs:10 ~layers:8 ~layer_width:12 ~num_outputs:6 in
  let tg = Simplify.run (tag_netlist nl) in
  let labels = Flowmap.labels ~k:4 tg in
  Gate_netlist.iter
    (fun id n ->
      Array.iter
        (fun f ->
          check Alcotest.bool "label monotone" true (labels.(f) <= labels.(id)))
        n.Gate_netlist.fanins)
    tg.Decompose.gates

let test_flowmap_depth_le_gate_depth () =
  let rng = Rng.create 123 in
  let nl = Gen.random_layered rng ~num_inputs:8 ~layers:10 ~layer_width:10 ~num_outputs:4 in
  let tg = Simplify.run (tag_netlist nl) in
  let lut = Flowmap.map ~k:4 tg in
  check Alcotest.bool "lut depth <= gate depth" true
    (Lut_network.depth lut <= Gate_netlist.depth tg.Decompose.gates);
  check Alcotest.bool "equivalent" true (equivalent_exhaustive tg lut)

let flowmap_equiv_prop =
  QCheck.Test.make ~name:"flowmap preserves function on random netlists" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl =
        Gen.random_layered rng ~num_inputs:6 ~layers:5 ~layer_width:8 ~num_outputs:5
      in
      let tg = Simplify.run (tag_netlist nl) in
      let lut = Flowmap.map ~k:4 tg in
      Lut_network.validate lut;
      equivalent_exhaustive tg lut)

let test_area_recovery_shrinks () =
  let rng = Rng.create 2718 in
  let nl = Gen.random_layered rng ~num_inputs:8 ~layers:7 ~layer_width:12 ~num_outputs:5 in
  let tg = Simplify.run (tag_netlist nl) in
  let raw = Flowmap.map ~k:4 ~area_recover:false tg in
  let packed = Flowmap.map ~k:4 ~area_recover:true tg in
  check Alcotest.bool "recovery never grows" true
    (Lut_network.num_luts packed <= Lut_network.num_luts raw);
  check Alcotest.bool "depth never grows" true
    (Lut_network.depth packed <= Lut_network.depth raw);
  check Alcotest.bool "equivalent" true (equivalent_exhaustive tg packed)

(* --- partition --- *)

let mapped_fsm () =
  let d, _, _, _ = fsm_datapath () in
  let lv = Levelize.levelize d in
  let tg = Simplify.run (Decompose.plane lv 1) in
  Flowmap.map ~k:4 tg

let test_partition_covers_luts () =
  let lut = mapped_fsm () in
  let part = Partition.partition lut ~level:2 in
  Partition.validate part;
  let total_weight =
    Array.fold_left (fun acc u -> acc + u.Partition.weight) 0 part.Partition.units
  in
  check Alcotest.int "weights cover all LUTs" (Lut_network.num_luts lut) total_weight

let test_partition_level1_bands () =
  let lut = mapped_fsm () in
  let p1 = Partition.partition lut ~level:1 in
  let p_big = Partition.partition lut ~level:100 in
  Partition.validate p1;
  Partition.validate p_big;
  (* level-1: every module LUT band has depth exactly 1, so for each module
     the number of units equals the module depth; with a huge level, each
     module is one unit. *)
  let modules = Lut_network.modules lut in
  let real_modules = List.filter (fun (m, _) -> m >= 0) modules in
  let units_of p =
    Array.to_list p.Partition.units
    |> List.filter (fun u -> u.Partition.module_id >= 0)
    |> List.length
  in
  check Alcotest.int "one unit per module at huge level" (List.length real_modules)
    (units_of p_big);
  check Alcotest.bool "more units at level 1" true (units_of p1 >= units_of p_big)

let test_partition_critical_path () =
  let lut = mapped_fsm () in
  let part = Partition.partition lut ~level:1 in
  let cp = Partition.critical_path_units part in
  check Alcotest.bool "critical path sane" true (cp >= 1 && cp <= Lut_network.size lut)

let test_partition_rejects_bad_level () =
  let lut = mapped_fsm () in
  Alcotest.check_raises "level 0" (Invalid_argument "Partition.partition: level < 1")
    (fun () -> ignore (Partition.partition lut ~level:0))

(* --- BLIF export of mapped networks --- *)

let test_lut_blif_roundtrip () =
  let lut = mapped_fsm () in
  let model = Nanomap_techmap.Lut_blif.model_of_network ~name:"fsm" lut in
  let text = Nanomap_blif.Blif.write_model model in
  let reparsed = Nanomap_blif.Blif.parse_string text in
  let lowered = Nanomap_blif.Blif.lower reparsed in
  (* functional identity across all input assignments: the BLIF netlist's
     inputs are the network's register/PI bits by name *)
  let nl = lowered.Nanomap_blif.Blif.netlist in
  let rng = Rng.create 31 in
  for _ = 1 to 100 do
    let assignment = Hashtbl.create 16 in
    let origin_value origin =
      let key =
        match origin with
        | Lut_network.Register_bit (r, b) -> Printf.sprintf "reg%d_%d" r b
        | Lut_network.Pi_bit (s, b) -> Printf.sprintf "pi%d_%d" s b
        | Lut_network.Wire_bit (w, b) -> Printf.sprintf "wire%d_%d" w b
        | Lut_network.Const_bit b -> if b then "const1" else "const0"
      in
      match Hashtbl.find_opt assignment key with
      | Some v -> v
      | None ->
        let v = Rng.bool rng in
        Hashtbl.replace assignment key v;
        v
    in
    let lut_values = Lut_network.eval lut origin_value in
    let blif_inputs =
      List.map
        (fun (name, _) ->
          match Hashtbl.find_opt assignment name with
          | Some v -> v
          | None ->
            let v = Rng.bool rng in
            Hashtbl.replace assignment name v;
            v)
        (Gate_netlist.inputs nl)
    in
    let blif_outs = Gate_netlist.output_values nl (Array.of_list blif_inputs) in
    (* compare every register-target bit (exported as $latch outputs) *)
    List.iter
      (fun (target, node) ->
        match target with
        | Lut_network.Reg_target (r, b) ->
          let blif_name = Printf.sprintf "$latch.reg%d_%d" r b in
          (match List.assoc_opt blif_name blif_outs with
           | Some v ->
             check Alcotest.bool
               (Printf.sprintf "reg%d.%d" r b)
               lut_values.(node) v
           | None -> Alcotest.fail ("missing latch " ^ blif_name))
        | Lut_network.Po_target _ | Lut_network.Wire_target _ -> ())
      (Lut_network.outputs lut)
  done

(* --- full chain: RTL -> planes -> gates -> simplify -> flowmap, compared
   against the RTL reference simulator over a clocked run. --- *)

let test_full_chain_against_rtl_sim () =
  let d, x, s, r = fsm_datapath () in
  let lv = Levelize.levelize d in
  let tg = Simplify.run (Decompose.plane lv 1) in
  let lut = Flowmap.map ~k:4 tg in
  Lut_network.validate lut;
  let sim = Rtl.sim_create d in
  (* Mirror the register state manually through LUT-network evaluation. *)
  let state = Hashtbl.create 4 in
  Hashtbl.replace state r 0;
  Hashtbl.replace state s 0;
  let rng = Rng.create 2024 in
  for _ = 1 to 200 do
    let vx = Rng.int rng 16 in
    let rtl_outs = Rtl.sim_cycle sim [ ("x", vx) ] in
    let origin_value = function
      | Lut_network.Register_bit (sid, b) -> Hashtbl.find state sid land (1 lsl b) <> 0
      | Lut_network.Pi_bit (_, b) -> vx land (1 lsl b) <> 0
      | Lut_network.Const_bit bv -> bv
      | Lut_network.Wire_bit _ -> assert false
    in
    let values = Lut_network.eval lut origin_value in
    let outs = Lut_network.outputs lut in
    (* Compare PO against RTL sim. *)
    let po_value name =
      let node = List.assoc (Lut_network.Po_target name) outs in
      values.(node)
    in
    let rtl_r_out = List.assoc "r_out" rtl_outs in
    for b = 0 to 3 do
      check Alcotest.bool "po bit" (rtl_r_out land (1 lsl b) <> 0)
        (po_value (Printf.sprintf "r_out.%d" b))
    done;
    (* Clock: update mirrored registers from Reg_targets. *)
    let next sid width =
      let v = ref 0 in
      for b = 0 to width - 1 do
        let node = List.assoc (Lut_network.Reg_target (sid, b)) outs in
        if values.(node) then v := !v lor (1 lsl b)
      done;
      !v
    in
    let nr = next r 4 and ns = next s 1 in
    Hashtbl.replace state r nr;
    Hashtbl.replace state s ns;
    (* Registers must agree with the RTL simulator state. *)
    check Alcotest.int "r state" (Rtl.sim_peek sim r) nr;
    check Alcotest.int "s state" (Rtl.sim_peek sim s) ns
  done;
  ignore x

(* --- property: simplify preserves the truth table of random netlists --- *)

(* Exhaustive equivalence of a tagged netlist against its simplified form,
   keyed by PI origin (simplification reorders and drops inputs). *)
let simplify_preserves tg tg' n =
  let eval tgx bits =
    let sim_inputs =
      List.map
        (fun (_, gid) ->
          match List.assoc gid tgx.Decompose.input_origins with
          | Lut_network.Pi_bit (i, _) -> bits.(i)
          | Lut_network.Const_bit b -> b
          | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false)
        (Gate_netlist.inputs tgx.Decompose.gates)
    in
    Gate_netlist.simulate tgx.Decompose.gates (Array.of_list sim_inputs)
  in
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let bits = Array.init n (fun i -> v land (1 lsl i) <> 0) in
    let va = eval tg bits and vb = eval tg' bits in
    List.iter
      (fun (target, gid) ->
        let gid' = List.assoc target tg'.Decompose.output_targets in
        if va.(gid) <> vb.(gid') then ok := false)
      tg.Decompose.output_targets
  done;
  !ok

let simplify_equiv_prop =
  QCheck.Test.make ~name:"simplify preserves function on random netlists"
    ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl =
        Gen.random_layered rng ~num_inputs:6 ~layers:5 ~layer_width:8
          ~num_outputs:5
      in
      let tg = tag_netlist nl in
      simplify_preserves tg (Simplify.run tg) 6)

(* --- property: decompose (and simplify) preserve RTL semantics ---

   Random pure-combinational Gen_rtl designs with at most 6 input bits:
   the decomposed (optionally simplified) plane netlist must agree with
   the RTL reference simulator on every input assignment. *)

let split_po name =
  match String.rindex_opt name '.' with
  | None -> (name, 0)
  | Some i ->
    (match
       int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))
     with
    | Some bit -> (String.sub name 0 i, bit)
    | None -> (name, 0))

let decompose_prop ~simplify_too name =
  QCheck.Test.make ~name ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let spec =
        Gen_rtl.random_spec rng
          { Gen_rtl.steps = 12; max_width = 2; max_regs = 0; max_inputs = 3 }
      in
      let d = Gen_rtl.build spec in
      let lv = Levelize.levelize d in
      let tg = Decompose.plane lv 1 in
      let tg = if simplify_too then Simplify.run tg else tg in
      let inputs = Rtl.inputs d in
      let total_bits =
        List.fold_left (fun a (s : Rtl.signal) -> a + s.Rtl.width) 0 inputs
      in
      assert (total_bits <= 6);
      let ok = ref true in
      for v = 0 to (1 lsl total_bits) - 1 do
        let stim, _ =
          List.fold_left
            (fun (acc, off) (s : Rtl.signal) ->
              ( (s.Rtl.name, (v lsr off) land ((1 lsl s.Rtl.width) - 1)) :: acc,
                off + s.Rtl.width ))
            ([], 0) inputs
        in
        let sim = Rtl.sim_create d in
        let outs = Rtl.sim_cycle sim stim in
        let input_bit sid b =
          let s = Rtl.signal d sid in
          List.assoc s.Rtl.name stim land (1 lsl b) <> 0
        in
        let gate_inputs =
          List.map
            (fun (_, gid) ->
              match List.assoc gid tg.Decompose.input_origins with
              | Lut_network.Pi_bit (sid, b) -> input_bit sid b
              | Lut_network.Const_bit b -> b
              | Lut_network.Register_bit _ | Lut_network.Wire_bit _ -> false)
            (Gate_netlist.inputs tg.Decompose.gates)
        in
        let values =
          Gate_netlist.simulate tg.Decompose.gates (Array.of_list gate_inputs)
        in
        List.iter
          (fun (target, gid) ->
            match target with
            | Lut_network.Po_target po ->
              let base, idx = split_po po in
              let expected = List.assoc base outs land (1 lsl idx) <> 0 in
              if values.(gid) <> expected then ok := false
            | Lut_network.Reg_target _ | Lut_network.Wire_target _ -> ())
          tg.Decompose.output_targets
      done;
      !ok)

let decompose_equiv_prop =
  decompose_prop ~simplify_too:false
    "decompose preserves RTL semantics on random designs"

let decompose_simplify_equiv_prop =
  decompose_prop ~simplify_too:true
    "decompose+simplify preserves RTL semantics on random designs"

let qsuite = List.map QCheck_alcotest.to_alcotest [ flowmap_equiv_prop ]

let qsuite_preserve =
  List.map QCheck_alcotest.to_alcotest
    [ simplify_equiv_prop; decompose_equiv_prop; decompose_simplify_equiv_prop ]

let () =
  Alcotest.run "techmap"
    [ ( "decompose",
        [ Alcotest.test_case "outputs/inputs" `Quick test_decompose_outputs;
          Alcotest.test_case "equivalence" `Quick test_decompose_equivalence ] );
      ( "simplify",
        [ Alcotest.test_case "shrinks+preserves" `Quick test_simplify_shrinks_and_preserves;
          Alcotest.test_case "constant folding" `Quick test_simplify_constant_folding;
          Alcotest.test_case "cse" `Quick test_simplify_cse ] );
      ( "flowmap",
        [ Alcotest.test_case "k-feasible adder" `Quick test_flowmap_k_feasible;
          Alcotest.test_case "depth-optimal tree" `Quick test_flowmap_depth_optimal_tree;
          Alcotest.test_case "labels monotone" `Quick test_flowmap_labels_monotone;
          Alcotest.test_case "depth bound" `Quick test_flowmap_depth_le_gate_depth;
          Alcotest.test_case "area recovery" `Quick test_area_recovery_shrinks ]
        @ qsuite );
      ( "partition",
        [ Alcotest.test_case "covers LUTs" `Quick test_partition_covers_luts;
          Alcotest.test_case "bands" `Quick test_partition_level1_bands;
          Alcotest.test_case "critical path" `Quick test_partition_critical_path;
          Alcotest.test_case "bad level" `Quick test_partition_rejects_bad_level ] );
      ( "blif-export",
        [ Alcotest.test_case "roundtrip" `Quick test_lut_blif_roundtrip ] );
      ( "full-chain",
        [ Alcotest.test_case "RTL sim vs mapped" `Quick test_full_chain_against_rtl_sim ] );
      ("preserve-properties", qsuite_preserve) ]
