module Telemetry = Nanomap_util.Telemetry
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Fault = Nanomap_flow.Fault
module Diag = Nanomap_util.Diag
module Arch = Nanomap_arch.Arch
module Rr_graph = Nanomap_route.Rr_graph
module Circuits = Nanomap_circuits.Circuits

let check = Alcotest.check

(* A fake clock ticking 10 ns per reading makes every span width exact. *)
let fake_clock () =
  let t = ref (-10L) in
  fun () ->
    t := Int64.add !t 10L;
    !t

let test_spans_nest () =
  let run = Telemetry.start ~clock:(fake_clock ()) "nesting" in
  let r =
    Telemetry.span run "outer" (fun () ->
        let a = Telemetry.span run "inner1" (fun () -> 1) in
        let b = Telemetry.span run "inner2" (fun () -> 2) in
        a + b)
  in
  Telemetry.finish run;
  check Alcotest.int "body result" 3 r;
  match Telemetry.spans run with
  | [ outer ] ->
    check Alcotest.string "outer name" "outer" outer.Telemetry.span_name;
    check Alcotest.(list string) "children in order" [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Telemetry.span_name) outer.Telemetry.children);
    List.iter
      (fun (c : Telemetry.span) ->
        check Alcotest.bool "child within parent" true
          (c.Telemetry.start_ns >= outer.Telemetry.start_ns
          && c.Telemetry.stop_ns <= outer.Telemetry.stop_ns))
      outer.Telemetry.children
  | spans ->
    Alcotest.failf "expected one top-level span, got %d" (List.length spans)

let test_span_closes_on_raise () =
  let run = Telemetry.start ~clock:(fake_clock ()) "raise" in
  (try
     Telemetry.span run "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Telemetry.span run "after" (fun () -> ());
  Telemetry.finish run;
  check Alcotest.(list string) "both spans top-level, closed"
    [ "doomed"; "after" ]
    (List.map (fun s -> s.Telemetry.span_name) (Telemetry.spans run))

let test_counters_sum_across_stages () =
  let c = Telemetry.counter "test.widgets" in
  let run = Telemetry.start ~clock:(fake_clock ()) "counting" in
  Telemetry.span run "stage1" (fun () ->
      for _ = 1 to 3 do
        Telemetry.incr c
      done);
  Telemetry.span run "stage2" (fun () -> Telemetry.add c 4);
  Telemetry.finish run;
  let delta name =
    match Telemetry.find_spans run name with
    | [ sp ] -> (try List.assoc "test.widgets" sp.Telemetry.deltas with Not_found -> 0)
    | _ -> Alcotest.failf "expected exactly one %s span" name
  in
  check Alcotest.int "stage1 delta" 3 (delta "stage1");
  check Alcotest.int "stage2 delta" 4 (delta "stage2");
  check Alcotest.int "run total is the sum" 7
    (try List.assoc "test.widgets" (Telemetry.counters run) with Not_found -> 0)

let test_runs_independent () =
  (* counters are shared globals, but a second run only sees its own work *)
  let c = Telemetry.counter "test.independent" in
  let run1 = Telemetry.start ~clock:(fake_clock ()) "first" in
  Telemetry.span run1 "s" (fun () -> Telemetry.add c 100);
  Telemetry.finish run1;
  let run2 = Telemetry.start ~clock:(fake_clock ()) "second" in
  Telemetry.span run2 "s" (fun () -> Telemetry.add c 5);
  Telemetry.finish run2;
  check Alcotest.int "second run sees only its delta" 5
    (try List.assoc "test.independent" (Telemetry.counters run2) with Not_found -> 0)

let test_json_round_trip () =
  let c = Telemetry.counter "test.json" in
  let run = Telemetry.start ~clock:(fake_clock ()) "json \"run\"" in
  Telemetry.span run "outer" (fun () ->
      Telemetry.incr c;
      Telemetry.span run "inner" (fun () -> Telemetry.add c 2));
  Telemetry.event run "note" ~data:[ ("k", "v with \"quotes\"") ];
  Telemetry.set_gauge run "g.one" 1.25;
  Telemetry.set_gauge run "g.two" 3.0;
  Telemetry.finish run;
  let s1 = Telemetry.to_json_string run in
  let run' = Telemetry.of_json_string s1 in
  let s2 = Telemetry.to_json_string run' in
  check Alcotest.string "round-trip is byte-identical" s1 s2;
  check Alcotest.string "name survives" (Telemetry.name run)
    (Telemetry.name run');
  check Alcotest.int "counters survive"
    (List.length (Telemetry.counters run))
    (List.length (Telemetry.counters run'))

let flow_options =
  { Flow.default_options with Flow.objective = Flow.At_min; seed = 3 }

let flow_run () =
  let design = (Circuits.ex1_small ()).Circuits.design in
  Flow.run ~options:flow_options ~arch:Arch.unbounded_k design

let test_flow_deterministic_json () =
  let r1 = flow_run () and r2 = flow_run () in
  let j1 = Telemetry.to_json_string ~timings:false r1.Flow.telemetry in
  let j2 = Telemetry.to_json_string ~timings:false r2.Flow.telemetry in
  check Alcotest.string "same-seed runs emit identical timeless JSON" j1 j2

let test_flow_covers_layers () =
  let r = flow_run () in
  let counters = Telemetry.counters r.Flow.telemetry in
  let layer_hit prefixes =
    List.exists
      (fun (name, v) ->
        v > 0 && List.exists (fun p -> String.length name >= String.length p
                                       && String.sub name 0 (String.length p) = p)
                   prefixes)
      counters
  in
  check Alcotest.bool "core counters" true (layer_hit [ "fds."; "sched." ]);
  check Alcotest.bool "cluster counters" true (layer_hit [ "cluster." ]);
  check Alcotest.bool "place counters" true (layer_hit [ "place." ]);
  check Alcotest.bool "route counters" true (layer_hit [ "route." ]);
  let stage_names =
    List.map (fun s -> s.Telemetry.span_name) (Telemetry.spans r.Flow.telemetry)
  in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " stage present") true
        (List.mem expected stage_names))
    [ "prepare"; "plan"; "cluster"; "rebalance"; "place_fast"; "place_detailed";
      "route"; "bitstream" ];
  (* the table renderer shows every stage with a nonzero duration *)
  let table = Telemetry.to_table_string r.Flow.telemetry in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " in table") true
        (let re = expected in
         let n = String.length table and m = String.length re in
         let rec scan i =
           i + m <= n && (String.sub table i m = re || scan (i + 1))
         in
         scan 0))
    [ "place_detailed"; "total"; "gauges" ]

(* ------------------------------------ guardrail counters and journal *)

(* A clean run takes no degradation step and journals no violations. *)
let test_clean_run_guardrail_telemetry () =
  let r = flow_run () in
  check Alcotest.(list string) "no degradation steps" [] r.Flow.degradations;
  let events = Telemetry.events r.Flow.telemetry in
  check Alcotest.bool "no degradation events" true
    (not (List.exists (fun e -> e.Telemetry.label = "flow.degradation") events));
  check Alcotest.bool "no diag events" true
    (not (List.exists (fun e -> e.Telemetry.label = "diag") events));
  let counters = Telemetry.counters r.Flow.telemetry in
  check Alcotest.int "no violations counted" 0
    (Option.value ~default:0 (List.assoc_opt "check.violations" counters));
  check Alcotest.int "no degradations counted" 0
    (Option.value ~default:0 (List.assoc_opt "flow.degradations" counters))

(* Every checker rejection bumps the global check.violations counter. *)
let test_violation_counter () =
  let r = flow_run () in
  let bs = Option.get r.Flow.bitstream in
  let c = Telemetry.counter "check.violations" in
  let v0 = Telemetry.value c in
  (match
     Check.bitstream Check.Full ~arch:Arch.unbounded_k
       (Fault.corrupt_bitstream bs)
   with
  | Ok () -> Alcotest.fail "corrupt bitstream accepted"
  | Error _ -> ());
  check Alcotest.bool "check.violations bumped" true (Telemetry.value c > v0)

(* A fabric with no routing tracks at all cannot recover: the flow must
   walk the whole degradation ladder (reseed, widen, refold), count every
   step, and surface the trail in the final diagnostic. *)
let test_degradation_exhausts_and_counts () =
  let options =
    { flow_options with
      Flow.check_level = Check.Off;
      route_caps =
        Some
          { Rr_graph.direct_tracks = 0; len1_tracks = 0; len4_tracks = 0;
            global_tracks = 0 } }
  in
  let design = (Circuits.ex1_small ()).Circuits.design in
  let c = Telemetry.counter "flow.degradations" in
  let v0 = Telemetry.value c in
  match Flow.run_result ~options ~arch:Arch.unbounded_k design with
  | Ok _ -> Alcotest.fail "trackless fabric routed"
  | Error d ->
    check Alcotest.string "fails in routing" "route" d.Diag.stage;
    check Alcotest.bool "steps counted" true (Telemetry.value c - v0 >= 3);
    (match List.assoc_opt "degradations" d.Diag.context with
     | None -> Alcotest.fail "diagnostic lacks the degradation trail"
     | Some trail ->
       List.iter
         (fun step ->
           let n = String.length trail and m = String.length step in
           let rec scan i =
             i + m <= n && (String.sub trail i m = step || scan (i + 1))
           in
           check Alcotest.bool (step ^ " in trail") true (scan 0))
         [ "reseed"; "widen"; "refold" ])

(* Recovery through refold: at folding level 7 ex1-4bit needs 4 SMBs on a
   2x3 grid; with three grid sites fully defective only 3 sites remain, so
   placement is impossible until the degradation ladder refolds to level 6
   (3 SMBs on a 2x2 grid, where just one defective site overlaps). The
   successful run must journal the flow.degradation events and record the
   trail in the report. *)
let test_degradation_recovers_and_journals () =
  let bad_site (x, y) =
    List.concat_map
      (fun mb -> List.init 4 (fun le -> (x, y, mb, le)))
      [ 0; 1; 2; 3 ]
  in
  let defects =
    { Nanomap_arch.Defect.none with
      Nanomap_arch.Defect.les =
        List.concat_map bad_site [ (1, 1); (0, 2); (1, 2) ] }
  in
  let options =
    { flow_options with
      Flow.objective = Flow.Fixed_level 7;
      check_level = Check.Full;
      defects }
  in
  let design = (Circuits.ex1_small ()).Circuits.design in
  match Flow.run_result ~options ~arch:Arch.unbounded_k design with
  | Error d ->
    Alcotest.failf "starved fabric did not recover: %s" (Diag.to_string d)
  | Ok r ->
    check Alcotest.(list string) "degradation trail recorded"
      [ "reseed"; "widen"; "refold" ] r.Flow.degradations;
    check Alcotest.int "refolded to level 6" 6
      r.Flow.plan.Nanomap_core.Mapper.level;
    let events = Telemetry.events r.Flow.telemetry in
    let degr =
      List.filter (fun e -> e.Telemetry.label = "flow.degradation") events
    in
    check Alcotest.(list (option string)) "journaled steps in order"
      [ Some "reseed"; Some "widen"; Some "refold" ]
      (List.map (fun e -> List.assoc_opt "step" e.Telemetry.data) degr);
    let counters = Telemetry.counters r.Flow.telemetry in
    check Alcotest.int "flow.degradations counted in-run" 3
      (Option.value ~default:0 (List.assoc_opt "flow.degradations" counters))

let () =
  Alcotest.run "telemetry"
    [ ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_spans_nest;
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise ] );
      ( "counters",
        [ Alcotest.test_case "sum across stages" `Quick
            test_counters_sum_across_stages;
          Alcotest.test_case "runs independent" `Quick test_runs_independent ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "flow determinism" `Quick
            test_flow_deterministic_json ] );
      ( "flow",
        [ Alcotest.test_case "covers four layers" `Quick test_flow_covers_layers ]
      );
      ( "guardrails",
        [ Alcotest.test_case "clean run" `Quick
            test_clean_run_guardrail_telemetry;
          Alcotest.test_case "violation counter" `Quick test_violation_counter;
          Alcotest.test_case "degradation exhausts" `Quick
            test_degradation_exhausts_and_counts;
          Alcotest.test_case "degradation recovers" `Quick
            test_degradation_recovers_and_journals ] ) ]
