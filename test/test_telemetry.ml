module Telemetry = Nanomap_util.Telemetry
module Flow = Nanomap_flow.Flow
module Arch = Nanomap_arch.Arch
module Circuits = Nanomap_circuits.Circuits

let check = Alcotest.check

(* A fake clock ticking 10 ns per reading makes every span width exact. *)
let fake_clock () =
  let t = ref (-10L) in
  fun () ->
    t := Int64.add !t 10L;
    !t

let test_spans_nest () =
  let run = Telemetry.start ~clock:(fake_clock ()) "nesting" in
  let r =
    Telemetry.span run "outer" (fun () ->
        let a = Telemetry.span run "inner1" (fun () -> 1) in
        let b = Telemetry.span run "inner2" (fun () -> 2) in
        a + b)
  in
  Telemetry.finish run;
  check Alcotest.int "body result" 3 r;
  match Telemetry.spans run with
  | [ outer ] ->
    check Alcotest.string "outer name" "outer" outer.Telemetry.span_name;
    check Alcotest.(list string) "children in order" [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Telemetry.span_name) outer.Telemetry.children);
    List.iter
      (fun (c : Telemetry.span) ->
        check Alcotest.bool "child within parent" true
          (c.Telemetry.start_ns >= outer.Telemetry.start_ns
          && c.Telemetry.stop_ns <= outer.Telemetry.stop_ns))
      outer.Telemetry.children
  | spans ->
    Alcotest.failf "expected one top-level span, got %d" (List.length spans)

let test_span_closes_on_raise () =
  let run = Telemetry.start ~clock:(fake_clock ()) "raise" in
  (try
     Telemetry.span run "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Telemetry.span run "after" (fun () -> ());
  Telemetry.finish run;
  check Alcotest.(list string) "both spans top-level, closed"
    [ "doomed"; "after" ]
    (List.map (fun s -> s.Telemetry.span_name) (Telemetry.spans run))

let test_counters_sum_across_stages () =
  let c = Telemetry.counter "test.widgets" in
  let run = Telemetry.start ~clock:(fake_clock ()) "counting" in
  Telemetry.span run "stage1" (fun () ->
      for _ = 1 to 3 do
        Telemetry.incr c
      done);
  Telemetry.span run "stage2" (fun () -> Telemetry.add c 4);
  Telemetry.finish run;
  let delta name =
    match Telemetry.find_spans run name with
    | [ sp ] -> (try List.assoc "test.widgets" sp.Telemetry.deltas with Not_found -> 0)
    | _ -> Alcotest.failf "expected exactly one %s span" name
  in
  check Alcotest.int "stage1 delta" 3 (delta "stage1");
  check Alcotest.int "stage2 delta" 4 (delta "stage2");
  check Alcotest.int "run total is the sum" 7
    (try List.assoc "test.widgets" (Telemetry.counters run) with Not_found -> 0)

let test_runs_independent () =
  (* counters are shared globals, but a second run only sees its own work *)
  let c = Telemetry.counter "test.independent" in
  let run1 = Telemetry.start ~clock:(fake_clock ()) "first" in
  Telemetry.span run1 "s" (fun () -> Telemetry.add c 100);
  Telemetry.finish run1;
  let run2 = Telemetry.start ~clock:(fake_clock ()) "second" in
  Telemetry.span run2 "s" (fun () -> Telemetry.add c 5);
  Telemetry.finish run2;
  check Alcotest.int "second run sees only its delta" 5
    (try List.assoc "test.independent" (Telemetry.counters run2) with Not_found -> 0)

let test_json_round_trip () =
  let c = Telemetry.counter "test.json" in
  let run = Telemetry.start ~clock:(fake_clock ()) "json \"run\"" in
  Telemetry.span run "outer" (fun () ->
      Telemetry.incr c;
      Telemetry.span run "inner" (fun () -> Telemetry.add c 2));
  Telemetry.event run "note" ~data:[ ("k", "v with \"quotes\"") ];
  Telemetry.set_gauge run "g.one" 1.25;
  Telemetry.set_gauge run "g.two" 3.0;
  Telemetry.finish run;
  let s1 = Telemetry.to_json_string run in
  let run' = Telemetry.of_json_string s1 in
  let s2 = Telemetry.to_json_string run' in
  check Alcotest.string "round-trip is byte-identical" s1 s2;
  check Alcotest.string "name survives" (Telemetry.name run)
    (Telemetry.name run');
  check Alcotest.int "counters survive"
    (List.length (Telemetry.counters run))
    (List.length (Telemetry.counters run'))

let flow_options =
  { Flow.default_options with Flow.objective = Flow.At_min; seed = 3 }

let flow_run () =
  let design = (Circuits.ex1_small ()).Circuits.design in
  Flow.run ~options:flow_options ~arch:Arch.unbounded_k design

let test_flow_deterministic_json () =
  let r1 = flow_run () and r2 = flow_run () in
  let j1 = Telemetry.to_json_string ~timings:false r1.Flow.telemetry in
  let j2 = Telemetry.to_json_string ~timings:false r2.Flow.telemetry in
  check Alcotest.string "same-seed runs emit identical timeless JSON" j1 j2

let test_flow_covers_layers () =
  let r = flow_run () in
  let counters = Telemetry.counters r.Flow.telemetry in
  let layer_hit prefixes =
    List.exists
      (fun (name, v) ->
        v > 0 && List.exists (fun p -> String.length name >= String.length p
                                       && String.sub name 0 (String.length p) = p)
                   prefixes)
      counters
  in
  check Alcotest.bool "core counters" true (layer_hit [ "fds."; "sched." ]);
  check Alcotest.bool "cluster counters" true (layer_hit [ "cluster." ]);
  check Alcotest.bool "place counters" true (layer_hit [ "place." ]);
  check Alcotest.bool "route counters" true (layer_hit [ "route." ]);
  let stage_names =
    List.map (fun s -> s.Telemetry.span_name) (Telemetry.spans r.Flow.telemetry)
  in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " stage present") true
        (List.mem expected stage_names))
    [ "prepare"; "plan"; "cluster"; "rebalance"; "place_fast"; "place_detailed";
      "route"; "bitstream" ];
  (* the table renderer shows every stage with a nonzero duration *)
  let table = Telemetry.to_table_string r.Flow.telemetry in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " in table") true
        (let re = expected in
         let n = String.length table and m = String.length re in
         let rec scan i =
           i + m <= n && (String.sub table i m = re || scan (i + 1))
         in
         scan 0))
    [ "place_detailed"; "total"; "gauges" ]

let () =
  Alcotest.run "telemetry"
    [ ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_spans_nest;
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise ] );
      ( "counters",
        [ Alcotest.test_case "sum across stages" `Quick
            test_counters_sum_across_stages;
          Alcotest.test_case "runs independent" `Quick test_runs_independent ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "flow determinism" `Quick
            test_flow_deterministic_json ] );
      ( "flow",
        [ Alcotest.test_case "covers four layers" `Quick test_flow_covers_layers ]
      ) ]
