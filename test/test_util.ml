module Rng = Nanomap_util.Rng
module Vec = Nanomap_util.Vec
module Union_find = Nanomap_util.Union_find
module Stats = Nanomap_util.Stats
module Ascii_table = Nanomap_util.Ascii_table

let check = Alcotest.check

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 5)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    check Alcotest.bool "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    check Alcotest.bool "in range" true (x >= 0. && x < 2.5)
  done

let test_rng_split_independent () =
  let r = Rng.create 3 in
  let s = Rng.split r in
  check Alcotest.bool "split differs from parent" true
    (not (Int64.equal (Rng.int64 r) (Rng.int64 s)))

let test_rng_shuffle_permutes () =
  let r = Rng.create 11 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 100 Fun.id) sorted;
  check Alcotest.bool "actually moved" true (a <> Array.init 100 Fun.id)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    check Alcotest.int "index" i (Vec.push v (i * 2))
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "value" (i * 2) (Vec.get v i)
  done

let test_vec_set () =
  let v = Vec.make 5 0 in
  Vec.set v 3 42;
  check Alcotest.int "set" 42 (Vec.get v 3);
  check Alcotest.int "others" 0 (Vec.get v 2)

let test_vec_out_of_bounds () =
  let v = Vec.make 3 0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3))

let test_vec_fold_iter () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3; 4 ];
  check Alcotest.int "fold sum" 10 (Vec.fold ( + ) 0 v);
  check (Alcotest.list Alcotest.int) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_union_find_basic () =
  let uf = Union_find.create 10 in
  check Alcotest.int "initial sets" 10 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  check Alcotest.bool "same" true (Union_find.same uf 0 3);
  check Alcotest.bool "diff" false (Union_find.same uf 0 4);
  check Alcotest.int "sets after" 7 (Union_find.count uf)

let test_union_find_idempotent () =
  let uf = Union_find.create 4 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  check Alcotest.int "count stable" 3 (Union_find.count uf)

let test_stats () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check (Alcotest.float 1e-9) "mean empty" 0. (Stats.mean []);
  check (Alcotest.float 1e-9) "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  check (Alcotest.float 1e-9) "maxf" 4. (Stats.maxf [ 1.; 4.; 2. ]);
  check (Alcotest.float 1e-9) "minf" 1. (Stats.minf [ 1.; 4.; 2. ]);
  check Alcotest.int "ceil_div exact" 3 (Stats.ceil_div 9 3);
  check Alcotest.int "ceil_div up" 4 (Stats.ceil_div 10 3);
  check Alcotest.int "ceil_div one" 1 (Stats.ceil_div 1 5);
  check (Alcotest.float 1e-9) "round2" 1.23 (Stats.round2 1.2349);
  check (Alcotest.float 1e-9) "stddev" (sqrt 1.25)
    (Stats.stddev [ 1.; 2.; 3.; 4. ]);
  check (Alcotest.float 1e-9) "stddev constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check (Alcotest.float 1e-9) "stddev singleton" 0. (Stats.stddev [ 7. ]);
  check (Alcotest.float 1e-9) "stddev empty" 0. (Stats.stddev []);
  check (Alcotest.float 1e-9) "median odd" 3. (Stats.median [ 5.; 1.; 3. ]);
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "median empty" 0. (Stats.median [])

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let test_ascii_table () =
  let t = Ascii_table.create [ "a"; "bb" ] in
  Ascii_table.add_row t [ "x"; "y" ];
  Ascii_table.add_separator t;
  Ascii_table.add_row t [ "long-cell" ];
  let s = Ascii_table.to_string t in
  check Alcotest.bool "contains header" true (contains s "bb");
  check Alcotest.bool "contains row" true (contains s "long-cell");
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Ascii_table.add_row: more cells than headers")
    (fun () -> Ascii_table.add_row t [ "1"; "2"; "3" ])

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes ] );
      ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "out of bounds" `Quick test_vec_out_of_bounds;
          Alcotest.test_case "fold/iter" `Quick test_vec_fold_iter ] );
      ( "union_find",
        [ Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "idempotent" `Quick test_union_find_idempotent ] );
      ("stats", [ Alcotest.test_case "all" `Quick test_stats ]);
      ("ascii_table", [ Alcotest.test_case "render" `Quick test_ascii_table ]) ]
