(* The differential verification subsystem: generator totality, oracle
   clean runs, fault detection at the right level pair, shrinking, the
   counterexample corpus, and the bitstream replay decoding. *)

module Rtl = Nanomap_rtl.Rtl
module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Emulator = Nanomap_emu.Emulator
module Bitstream = Nanomap_bitstream.Bitstream
module Flow = Nanomap_flow.Flow
module Fault = Nanomap_flow.Fault
module Diag = Nanomap_util.Diag
module Rng = Nanomap_util.Rng
module Telemetry = Nanomap_util.Telemetry
module Gen_rtl = Nanomap_verify.Gen_rtl
module Oracle = Nanomap_verify.Oracle
module Fuzz = Nanomap_verify.Fuzz

let check = Alcotest.check

(* --- a small design with a comb-driven PO (so functional faults are
   observable at the outputs immediately) and enough depth to fold --- *)

let accumulator () =
  let d = Rtl.create "acc4" in
  let x = Rtl.add_input d "x" 4 in
  let r = Rtl.add_register d ~name:"r" ~width:4 () in
  let sum = Rtl.add_op d ~name:"sum" ~width:4 (Rtl.Add (r, x)) in
  Rtl.connect_register d r ~d:sum;
  Rtl.mark_output d "y" sum;
  Rtl.validate d;
  d

let subject_of ?(fold = Fuzz.F_level 1) design =
  match
    Flow.run_result
      ~options:(Fuzz.flow_options ~seed:1 fold)
      ~arch:Arch.unbounded_k design
  with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok report -> (report, Oracle.subject_of_report report)

(* --- clean oracle runs --- *)

let test_oracle_pass () =
  let _, subject = subject_of (accumulator ()) in
  match Oracle.run ~cycles:60 ~seed:3 subject with
  | Oracle.Pass st ->
    check Alcotest.int "cycles" 60 st.Oracle.cycles_run;
    check Alcotest.bool "some register bits toggled" true
      (st.Oracle.toggled_bits > 0);
    check Alcotest.bool "occupancy positive" true (st.Oracle.occupancy > 0.)
  | o -> Alcotest.fail (Oracle.describe o)

let test_campaign_counters () =
  let c_cases = Telemetry.counter "verify.cases" in
  let c_levels = Telemetry.counter "verify.levels_checked" in
  let c_cycles = Telemetry.counter "verify.cycles" in
  let cases0 = Telemetry.value c_cases in
  let levels0 = Telemetry.value c_levels in
  let cycles0 = Telemetry.value c_cycles in
  let summary =
    Fuzz.run { Fuzz.default_config with Fuzz.count = 8; cycles = 20; seed = 7 }
  in
  check Alcotest.int "all passed" 8 summary.Fuzz.passed;
  check Alcotest.int "no failures" 0 (List.length summary.Fuzz.failures);
  check Alcotest.int "no flow errors" 0 (List.length summary.Fuzz.flow_errors);
  check Alcotest.int "verify.cases delta" 8 (Telemetry.value c_cases - cases0);
  (* four levels exercised per case, including the bitstream replay *)
  check Alcotest.int "verify.levels_checked delta" 32
    (Telemetry.value c_levels - levels0);
  check Alcotest.int "verify.cycles delta" 160
    (Telemetry.value c_cycles - cycles0);
  (* one journaled event per case *)
  let case_events =
    List.filter
      (fun (e : Telemetry.event) -> e.Telemetry.label = "verify.case")
      (Telemetry.events summary.Fuzz.telemetry)
  in
  check Alcotest.int "verify.case events" 8 (List.length case_events)

(* --- fault injection: each fault class caught at its level pair --- *)

let test_fault_flipped_lut () =
  let report, subject = subject_of (accumulator ()) in
  let prepared', plan' =
    Fault.flip_network_lut report.Flow.prepared report.Flow.plan
  in
  check Alcotest.bool "injector found a victim" true
    (prepared' != report.Flow.prepared);
  let subject =
    { subject with
      Oracle.networks = prepared'.Mapper.networks;
      Oracle.plan = plan' }
  in
  match Oracle.run ~cycles:40 subject with
  | Oracle.Mismatch m ->
    check Alcotest.string "golden" "rtl-sim" (Oracle.level_name m.Oracle.golden);
    check Alcotest.string "suspect" "lut-network"
      (Oracle.level_name m.Oracle.suspect)
  | o -> Alcotest.fail ("expected (rtl,lut) mismatch, got " ^ Oracle.describe o)

let test_fault_misrouted_ff () =
  let report, subject = subject_of ~fold:(Fuzz.F_level 1) (accumulator ()) in
  let cl' = Fault.misroute_ff_slot report.Flow.plan report.Flow.cluster in
  check Alcotest.bool "injector found a victim" true
    (cl' != report.Flow.cluster);
  let subject = { subject with Oracle.cluster = cl' } in
  match Oracle.run ~cycles:40 subject with
  | Oracle.Level_fault (Oracle.L_emu, d) ->
    check Alcotest.string "code" "slot-overwritten" d.Diag.code
  | o ->
    Alcotest.fail ("expected emulator slot fault, got " ^ Oracle.describe o)

let test_fault_inverted_bitstream () =
  let _, subject = subject_of (accumulator ()) in
  let bs =
    match subject.Oracle.bitstream with
    | Some bs -> bs
    | None -> Alcotest.fail "no bitstream"
  in
  let bs' = Fault.invert_bitstream_luts bs in
  check Alcotest.bool "injector changed the bitmap" true
    (not (Bytes.equal bs'.Bitstream.bytes bs.Bitstream.bytes));
  let subject = { subject with Oracle.bitstream = Some bs' } in
  match Oracle.run ~cycles:40 subject with
  | Oracle.Mismatch m ->
    check Alcotest.string "golden" "fabric-emulator"
      (Oracle.level_name m.Oracle.golden);
    check Alcotest.string "suspect" "bitstream-replay"
      (Oracle.level_name m.Oracle.suspect)
  | o -> Alcotest.fail ("expected (emu,bits) mismatch, got " ^ Oracle.describe o)

let test_fault_corrupt_bitstream () =
  let _, subject = subject_of (accumulator ()) in
  let bs =
    match subject.Oracle.bitstream with
    | Some bs -> bs
    | None -> Alcotest.fail "no bitstream"
  in
  let subject =
    { subject with Oracle.bitstream = Some (Fault.corrupt_bitstream bs) }
  in
  match Oracle.run ~cycles:40 subject with
  | Oracle.Level_fault (Oracle.L_bits, d) ->
    check Alcotest.string "code" "corrupt" d.Diag.code
  | o -> Alcotest.fail ("expected bitstream fault, got " ^ Oracle.describe o)

(* dropping an LE configuration from the bitmap must surface at the replay
   level — either as an unwritten-slot fault or as a value mismatch *)
let test_fault_dropped_le () =
  let _, subject = subject_of (accumulator ()) in
  let bs =
    match subject.Oracle.bitstream with
    | Some bs -> bs
    | None -> Alcotest.fail "no bitstream"
  in
  let num_smbs, lut_inputs, cfgs = Bitstream.parse_full bs.Bitstream.bytes in
  let dropped = ref false in
  let cfgs =
    Array.map
      (fun (c : Bitstream.config) ->
        match c.Bitstream.les with
        | le :: rest when not !dropped ->
          ignore le;
          dropped := true;
          { c with Bitstream.les = rest }
        | _ -> c)
      cfgs
  in
  check Alcotest.bool "dropped an LE" true !dropped;
  let bs' = { bs with Bitstream.bytes = Bitstream.encode_configs ~num_smbs ~lut_inputs cfgs } in
  let subject = { subject with Oracle.bitstream = Some bs' } in
  match Oracle.run ~cycles:40 subject with
  | Oracle.Level_fault (Oracle.L_bits, _) -> ()
  | Oracle.Mismatch m when m.Oracle.suspect = Oracle.L_bits -> ()
  | o ->
    Alcotest.fail ("expected replay-level detection, got " ^ Oracle.describe o)

(* --- emulator hold semantics --- *)

let test_missing_input_holds () =
  let d = Rtl.create "hold" in
  let a = Rtl.add_input d "a" 4 in
  let b = Rtl.add_input d "b" 4 in
  let sum = Rtl.add_op d ~width:4 (Rtl.Add (a, b)) in
  Rtl.mark_output d "y" sum;
  Rtl.validate d;
  let p = Mapper.prepare d in
  let plan = Mapper.no_folding p ~arch:Arch.unbounded_k in
  let cl = Cluster.pack plan ~arch:Arch.unbounded_k in
  let emu = Emulator.create d plan cl in
  let sim = Rtl.sim_create d in
  let run stim =
    let e = Rtl.sim_cycle sim stim in
    let g = Emulator.macro_cycle emu stim in
    check Alcotest.int "agree" (List.assoc "y" e) (List.assoc "y" g);
    List.assoc "y" g
  in
  check Alcotest.int "both driven" 8 (run [ ("a", 5); ("b", 3) ]);
  (* b missing: holds 3 *)
  check Alcotest.int "b held" 5 (run [ ("a", 2) ]);
  (* both missing: both held *)
  check Alcotest.int "both held" 5 (run []);
  ignore a;
  ignore b

(* --- spec serialization and shrinking --- *)

let spec_roundtrip_prop =
  QCheck.Test.make ~name:"spec serialization round-trips" ~count:50
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Gen_rtl.random_spec rng Gen_rtl.default_params in
      Gen_rtl.spec_of_string (Gen_rtl.spec_to_string spec) = spec)

let build_total_prop =
  QCheck.Test.make ~name:"every sub-spec builds a valid design" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Gen_rtl.random_spec rng Gen_rtl.default_params in
      (* the full spec and every drop-one/halved variant must build *)
      List.for_all
        (fun s ->
          match Gen_rtl.build s with
          | d ->
            Rtl.validate d;
            true
          | exception _ -> false)
        (spec :: Gen_rtl.shrink_candidates spec))

let fuzz_pass_prop =
  QCheck.Test.make ~name:"random designs pass the four-level oracle" ~count:15
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Gen_rtl.random_spec rng Gen_rtl.default_params in
      match Fuzz.run_spec ~cycles:20 ~seed Fuzz.F_auto spec with
      | Oracle.Pass _ -> true
      | o ->
        Printf.eprintf "seed %d: %s\n" seed (Oracle.describe o);
        false)

let has_mult spec =
  List.exists (function Gen_rtl.S_mult _ -> true | _ -> false) spec

let synthetic_outcome spec =
  if has_mult spec then
    Oracle.Mismatch
      { Oracle.golden = Oracle.L_rtl;
        suspect = Oracle.L_lut;
        cycle = 1;
        signal = "o0";
        expected = 0;
        got = 1 }
  else
    Oracle.Pass
      { Oracle.cycles_run = 1; reg_bits = 0; toggled_bits = 0; occupancy = 0. }

let test_shrink_to_minimum () =
  (* find a spec with a mult step *)
  let rng = Rng.create 11 in
  let rec gen () =
    let spec = Gen_rtl.random_spec rng Gen_rtl.default_params in
    if has_mult spec then spec else gen ()
  in
  let spec = gen () in
  let shrunk =
    Fuzz.shrink ~budget:500
      ~still_fails:(fun s ->
        Fuzz.same_failure_class (synthetic_outcome s) (synthetic_outcome spec))
      spec
  in
  check Alcotest.int "shrunk to one step" 1 (Gen_rtl.spec_size shrunk);
  check Alcotest.bool "the mult survived" true (has_mult shrunk)

(* --- campaign with injected failures: corpus write + reload --- *)

let test_corpus_write_and_reload () =
  let dir =
    (* unique path without depending on unix: claim a temp file name,
       free it, and let the corpus writer create the directory *)
    let f = Filename.temp_file "nanomap-corpus" "" in
    Sys.remove f;
    f
  in
  let cfg =
    { Fuzz.default_config with
      Fuzz.seed = 11;
      count = 12;
      corpus_dir = Some dir;
      shrink_budget = 500 }
  in
  let summary = Fuzz.run ~eval:synthetic_outcome cfg in
  check Alcotest.bool "some cases failed" true (summary.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      match f.Fuzz.corpus_file with
      | None -> Alcotest.fail "failure without corpus file"
      | Some path ->
        check Alcotest.bool (path ^ " exists") true (Sys.file_exists path);
        check Alcotest.int "fully shrunk" 1 (Gen_rtl.spec_size f.Fuzz.shrunk))
    summary.Fuzz.failures;
  let corpus = Fuzz.load_corpus dir in
  check Alcotest.int "all counterexamples reloadable"
    (List.length summary.Fuzz.failures)
    (List.length corpus);
  (* every reloaded counterexample still reproduces its failure class *)
  List.iter
    (fun (_, spec) ->
      check Alcotest.bool "still fails" true
        (match synthetic_outcome spec with
        | Oracle.Mismatch _ -> true
        | _ -> false))
    corpus;
  (* cleanup *)
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir

(* --- replay of the checked-in corpus: fixed bugs can never return --- *)

let corpus_dir () =
  let rec hunt dir depth =
    let candidate = Filename.concat (Filename.concat dir "test") "corpus" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else if depth > 8 then failwith "test/corpus not found"
    else hunt (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  hunt (Sys.getcwd ()) 0

let test_corpus_replay () =
  let corpus = Fuzz.load_corpus (corpus_dir ()) in
  check Alcotest.bool "corpus non-empty" true (corpus <> []);
  List.iter
    (fun (name, spec) ->
      match Fuzz.run_spec ~cycles:40 ~seed:1 Fuzz.F_auto spec with
      | Oracle.Pass _ -> ()
      | o ->
        Alcotest.fail (Printf.sprintf "corpus %s regressed: %s" name
                         (Oracle.describe o)))
    corpus

(* --- bitstream round-trip strictness --- *)

let test_bitstream_strictness () =
  let _, subject = subject_of (accumulator ()) in
  let bs =
    match subject.Oracle.bitstream with
    | Some bs -> bs
    | None -> Alcotest.fail "no bitstream"
  in
  let num_smbs, lut_inputs, cfgs = Bitstream.parse_full bs.Bitstream.bytes in
  let re = Bitstream.encode_configs ~num_smbs ~lut_inputs cfgs in
  check Alcotest.bool "byte-identical" true (Bytes.equal re bs.Bitstream.bytes);
  (* trailing garbage must be rejected *)
  let padded = Bytes.extend bs.Bitstream.bytes 0 1 in
  Bytes.set padded (Bytes.length padded - 1) '\x00';
  (match Bitstream.parse padded with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Bitstream.Corrupt _ -> ());
  (* bad magic must be rejected *)
  let bad = Bytes.copy bs.Bitstream.bytes in
  Bytes.set bad 0 'X';
  match Bitstream.parse bad with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Bitstream.Corrupt _ -> ()

(* --- parallel-vs-serial equivalence: [jobs] must change the wall clock
   only. Each test runs the same campaign (or flow) at jobs=1 and jobs=4
   and compares a byte-level fingerprint of everything observable. The
   jobs=4 leg goes through the pool code path even when the machine caps
   physical workers at one domain, so the sharded merge is exercised
   everywhere; genuine multi-domain interleaving is covered by the
   oversubscribed tests in test_pool.ml. --- *)

module Place = Nanomap_place.Place
module Router = Nanomap_route.Router

let summary_fingerprint (s : Fuzz.summary) =
  let fail_s (f : Fuzz.failure) =
    Printf.sprintf "%d|%s|%s|%s" f.Fuzz.index
      (Gen_rtl.spec_to_string f.Fuzz.spec)
      (Gen_rtl.spec_to_string f.Fuzz.shrunk)
      (Oracle.describe f.Fuzz.outcome)
  in
  Printf.sprintf "cases=%d passed=%d\n%s\n%s" s.Fuzz.cases s.Fuzz.passed
    (String.concat "\n" (List.map fail_s s.Fuzz.failures))
    (String.concat "\n"
       (List.map
          (fun (i, d) -> Printf.sprintf "%d:%s" i (Diag.to_string d))
          s.Fuzz.flow_errors))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let fresh_dir () =
  let f = Filename.temp_file "nanomap-eq" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_fuzz_jobs_equivalence_synthetic () =
  (* Injected failures make this the interesting case: shrinking and
     corpus writes interleave with evaluation in the serial code, and the
     sharded campaign must reproduce them byte for byte. *)
  let campaign jobs dir =
    Fuzz.run ~eval:synthetic_outcome
      { Fuzz.default_config with
        Fuzz.seed = 11;
        count = 24;
        corpus_dir = Some dir;
        shrink_budget = 500;
        jobs }
  in
  let dir1 = fresh_dir () and dir4 = fresh_dir () in
  let s1 = campaign 1 dir1 and s4 = campaign 4 dir4 in
  check Alcotest.string "summary identical" (summary_fingerprint s1)
    (summary_fingerprint s4);
  let ls dir = Sys.readdir dir |> Array.to_list |> List.sort compare in
  check (Alcotest.list Alcotest.string) "same corpus files" (ls dir1) (ls dir4);
  List.iter
    (fun f ->
      check Alcotest.string ("corpus " ^ f ^ " byte-identical")
        (read_file (Filename.concat dir1 f))
        (read_file (Filename.concat dir4 f)))
    (ls dir1);
  rm_rf dir1;
  rm_rf dir4

let test_fuzz_jobs_equivalence_real () =
  (* A small all-real campaign: every case is a full flow run plus the
     four-level oracle, sharded across the pool at jobs=4. The campaign
     telemetry (counter deltas, per-case event journal) must match too —
     that is the guard for the striped counters. *)
  let campaign jobs =
    Fuzz.run
      { Fuzz.default_config with Fuzz.seed = 5; count = 8; cycles = 20; jobs }
  in
  let s1 = campaign 1 and s4 = campaign 4 in
  check Alcotest.string "summary identical" (summary_fingerprint s1)
    (summary_fingerprint s4);
  check Alcotest.string "telemetry identical"
    (Telemetry.to_json_string ~timings:false s1.Fuzz.telemetry)
    (Telemetry.to_json_string ~timings:false s4.Fuzz.telemetry)

let report_fingerprint (r : Flow.report) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "les=%d smbs=%d area=%.6f delay=%.6f cf=%d retries=%d\n"
    r.Flow.area_les r.Flow.area_smbs r.Flow.area_um2 r.Flow.delay_model_ns
    r.Flow.channel_factor r.Flow.mapping_retries;
  (match r.Flow.delay_routed_ns with
  | Some d -> Printf.bprintf b "routed_ns=%.6f\n" d
  | None -> ());
  (match r.Flow.placement with
  | Some p ->
    Printf.bprintf b "hpwl=%.6f xy=" p.Place.hpwl;
    Array.iter (fun (x, y) -> Printf.bprintf b "%d,%d;" x y) p.Place.smb_xy;
    Buffer.add_char b '\n'
  | None -> ());
  (match r.Flow.routing with
  | Some rt ->
    Printf.bprintf b "routed=%b iters=%d overused=%d\n" rt.Router.success
      rt.Router.iterations rt.Router.overused
  | None -> ());
  (match r.Flow.bitstream with
  | Some bs ->
    Printf.bprintf b "bits=%s\n"
      (Digest.to_hex (Digest.bytes bs.Bitstream.bytes))
  | None -> ());
  Printf.bprintf b "degraded=%s\n" (String.concat "|" r.Flow.degradations);
  Buffer.add_string b (Telemetry.to_json_string ~timings:false r.Flow.telemetry);
  Buffer.contents b

let test_flow_jobs_equivalence () =
  (* The full flow at jobs=4 parallelizes the folding-level sweep and the
     placement portfolio; the report — areas, delays, every SMB
     coordinate, the bitstream digest, the telemetry journal — must be
     byte-identical to the serial run. The portfolio count is pinned
     separately precisely so this holds. *)
  let run jobs =
    match
      Flow.run_result
        ~options:{ Flow.default_options with Flow.jobs; portfolio = 3 }
        (accumulator ())
    with
    | Error d -> Alcotest.fail (Diag.to_string d)
    | Ok report -> report
  in
  check Alcotest.string "report identical"
    (report_fingerprint (run 1))
    (report_fingerprint (run 4))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ spec_roundtrip_prop; build_total_prop; fuzz_pass_prop ]

let () =
  Alcotest.run "verify"
    [ ( "oracle",
        [ Alcotest.test_case "clean pass" `Quick test_oracle_pass;
          Alcotest.test_case "campaign counters" `Quick test_campaign_counters;
          Alcotest.test_case "missing input holds" `Quick
            test_missing_input_holds ] );
      ( "faults",
        [ Alcotest.test_case "flipped LUT -> (rtl,lut)" `Quick
            test_fault_flipped_lut;
          Alcotest.test_case "misrouted FF -> emulator fault" `Quick
            test_fault_misrouted_ff;
          Alcotest.test_case "inverted bitstream -> (emu,bits)" `Quick
            test_fault_inverted_bitstream;
          Alcotest.test_case "corrupt bitstream -> replay fault" `Quick
            test_fault_corrupt_bitstream;
          Alcotest.test_case "dropped LE -> replay-level detection" `Quick
            test_fault_dropped_le ] );
      ( "shrinking",
        [ Alcotest.test_case "greedy shrink to minimum" `Quick
            test_shrink_to_minimum;
          Alcotest.test_case "corpus write and reload" `Quick
            test_corpus_write_and_reload ] );
      ( "corpus",
        [ Alcotest.test_case "checked-in corpus replays clean" `Quick
            test_corpus_replay ] );
      ( "bitstream",
        [ Alcotest.test_case "round-trip strictness" `Quick
            test_bitstream_strictness ] );
      ( "parallel",
        [ Alcotest.test_case "campaign jobs-equivalent (synthetic)" `Quick
            test_fuzz_jobs_equivalence_synthetic;
          Alcotest.test_case "campaign jobs-equivalent (real flow)" `Quick
            test_fuzz_jobs_equivalence_real;
          Alcotest.test_case "flow report jobs-equivalent" `Quick
            test_flow_jobs_equivalence ] );
      ("properties", qsuite) ]
